package simnet

import (
	"time"

	"transparentedge/internal/sim"
)

// HTTPRequest is a minimal HTTP-like request message.
type HTTPRequest struct {
	Method string
	Path   string
	Size   Bytes // on-wire request size (headers + body)
	Body   any
}

// HTTPResponse is a minimal HTTP-like response message.
type HTTPResponse struct {
	Status int
	Size   Bytes // on-wire response size
	Body   any
}

// HTTPHandler computes a response for a request. It runs inside a sim
// process, so it may Sleep to model service processing time.
type HTTPHandler func(p *sim.Proc, req *HTTPRequest) *HTTPResponse

// ServeHTTP installs a request/response server on port. Each connection is
// handled in its own sim process and serves any number of sequential
// requests (keep-alive).
func (h *Host) ServeHTTP(port int, handler HTTPHandler) *Listener {
	return h.Listen(port, func(p *sim.Proc, c *Conn) {
		for {
			payload, err := c.Recv(p, 0)
			if err != nil {
				return
			}
			req, ok := payload.(*HTTPRequest)
			if !ok {
				continue
			}
			resp := handler(p, req)
			if resp == nil {
				resp = &HTTPResponse{Status: 500, Size: minWireSize}
			}
			if resp.Size < minWireSize {
				resp.Size = minWireSize
			}
			if err := c.Send(resp.Size, resp); err != nil {
				return
			}
		}
	})
}

// HTTPAsyncHandler serves one request on a callback-mode server connection.
// It runs synchronously inside the request's delivery event and must not
// block; model service time with RespondAfter.
type HTTPAsyncHandler func(c *HTTPServerConn, req *HTTPRequest)

// HTTPServerConn is the server side of one callback-mode HTTP connection:
// keep-alive request/response without a per-connection process. Responses
// queue FIFO through a single pooled timer thunk, so pipelined requests on
// one connection answer in arrival order.
type HTTPServerConn struct {
	conn    *Conn
	handler HTTPAsyncHandler
	pending []*HTTPResponse
	head    int
	sendFn  func() // lazily bound drain thunk for RespondAfter
}

// ServeHTTPAsync installs a callback-mode request/response server on port:
// the process-free counterpart of ServeHTTP. Each connection costs one
// HTTPServerConn allocation instead of a goroutine, channel, and promise.
func (h *Host) ServeHTTPAsync(port int, handler HTTPAsyncHandler) *Listener {
	return h.ListenAsync(port, func(c *Conn) ConnHandler {
		return &HTTPServerConn{conn: c, handler: handler}
	})
}

// ConnEstablished implements ConnHandler (server connections are born
// established; nothing to do).
func (sc *HTTPServerConn) ConnEstablished(c *Conn, ok bool) {}

// ConnMessage implements ConnHandler: dispatch one request to the handler.
func (sc *HTTPServerConn) ConnMessage(c *Conn, payload any) {
	req, ok := payload.(*HTTPRequest)
	if !ok {
		return
	}
	sc.handler(sc, req)
}

// ConnClosed implements ConnHandler.
func (sc *HTTPServerConn) ConnClosed(c *Conn) {}

// Respond sends a response immediately. The response object may be shared
// across connections; it is not mutated (sub-minimum sizes are clamped on
// the wire, not in place).
func (sc *HTTPServerConn) Respond(resp *HTTPResponse) {
	if resp == nil {
		resp = &HTTPResponse{Status: 500, Size: minWireSize}
	}
	size := resp.Size
	if size < minWireSize {
		size = minWireSize
	}
	sc.conn.Send(size, resp)
}

// RespondAfter sends a response after d of service time, keeping FIFO order
// with other delayed responses on the connection (constant per-behavior
// delays plus pooled timer events preserve arrival order).
func (sc *HTTPServerConn) RespondAfter(d time.Duration, resp *HTTPResponse) {
	if d <= 0 {
		sc.Respond(resp)
		return
	}
	if sc.sendFn == nil {
		sc.sendFn = sc.sendPending
	}
	sc.pending = append(sc.pending, resp)
	sc.conn.host.net.K.AfterFree(d, sc.sendFn)
}

func (sc *HTTPServerConn) sendPending() {
	resp := sc.pending[sc.head]
	sc.pending[sc.head] = nil
	sc.head++
	if sc.head == len(sc.pending) {
		sc.pending = sc.pending[:0]
		sc.head = 0
	}
	sc.Respond(resp)
}

// HTTPResult is one client-side measurement, mirroring the timecurl.sh
// fields: connect time (TCP handshake) and total time (handshake through
// last response byte).
type HTTPResult struct {
	Resp    *HTTPResponse
	Connect time.Duration
	Total   time.Duration
}

// HTTPGet performs a full measured request from this host: dial, send,
// receive, close. timeout of zero waits forever (on-demand deployment
// "with waiting"). This is the moral equivalent of the paper's timecurl.sh:
// Total spans from starting the TCP connection until the response arrives.
func (h *Host) HTTPGet(p *sim.Proc, dst Addr, port int, req *HTTPRequest, timeout time.Duration) (*HTTPResult, error) {
	start := h.net.K.Now()
	c, err := h.Dial(p, dst, port, timeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	connect := h.net.K.Now() - start
	if req.Size < minWireSize {
		req.Size = minWireSize
	}
	if err := c.Send(req.Size, req); err != nil {
		return nil, err
	}
	remain := time.Duration(0)
	if timeout > 0 {
		remain = timeout - (h.net.K.Now() - start)
		if remain <= 0 {
			return nil, ErrTimeout
		}
	}
	payload, err := c.Recv(p, remain)
	if err != nil {
		return nil, err
	}
	resp, _ := payload.(*HTTPResponse)
	return &HTTPResult{
		Resp:    resp,
		Connect: connect,
		Total:   h.net.K.Now() - start,
	}, nil
}

// httpCall is the client state of one HTTPGetAsync: it is the connection's
// ConnHandler, so the whole measured request costs one allocation beyond the
// connection itself.
type httpCall struct {
	h       *Host
	c       *Conn
	start   sim.Time
	connect time.Duration
	req     *HTTPRequest
	timer   *sim.Event
	done    func(*HTTPResult, error)
	settled bool
}

// HTTPGetAsync performs the same measured request as HTTPGet — dial, send,
// receive, close — without a blocking process: done is invoked inside the
// completion event. timeout zero waits forever. This is the replay engine's
// hot path; it allocates a handful of objects per request instead of the
// process, channel, and promise machinery of the blocking version.
func (h *Host) HTTPGetAsync(dst Addr, port int, req *HTTPRequest, timeout time.Duration, done func(*HTTPResult, error)) {
	call := &httpCall{h: h, start: h.net.K.Now(), req: req, done: done}
	call.c = h.DialAsync(dst, port, call)
	if timeout > 0 {
		call.timer = h.net.K.After(timeout, func() { call.finish(nil, ErrTimeout) })
	}
}

// ConnEstablished implements ConnHandler: send the request.
func (call *httpCall) ConnEstablished(c *Conn, ok bool) {
	if !ok {
		call.finish(nil, ErrConnRefused)
		return
	}
	call.connect = time.Duration(call.h.net.K.Now() - call.start)
	size := call.req.Size
	if size < minWireSize {
		size = minWireSize
	}
	c.Send(size, call.req)
}

// ConnMessage implements ConnHandler: the response completes the call.
func (call *httpCall) ConnMessage(c *Conn, payload any) {
	resp, _ := payload.(*HTTPResponse)
	call.finish(&HTTPResult{
		Resp:    resp,
		Connect: call.connect,
		Total:   time.Duration(call.h.net.K.Now() - call.start),
	}, nil)
}

// ConnClosed implements ConnHandler: a close before the response is an error.
func (call *httpCall) ConnClosed(c *Conn) {
	call.finish(nil, ErrConnClosed)
}

func (call *httpCall) finish(res *HTTPResult, err error) {
	if call.settled {
		return
	}
	call.settled = true
	if call.timer != nil {
		call.timer.Cancel()
	}
	call.c.Close()
	call.done(res, err)
}
