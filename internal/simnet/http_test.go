package simnet

import (
	"errors"
	"testing"
	"time"

	"transparentedge/internal/sim"
)

func TestHTTPKeepAlive(t *testing.T) {
	// One connection serves any number of sequential requests.
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	served := 0
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		served++
		return &HTTPResponse{Status: 200, Size: KiB, Body: served}
	})
	var bodies []any
	k.Go("client", func(p *sim.Proc) {
		c, err := a.Dial(p, b.IP(), 80, 0)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for i := 0; i < 3; i++ {
			if err := c.Send(minWireSize, &HTTPRequest{Method: "GET", Path: "/"}); err != nil {
				t.Error(err)
				return
			}
			resp, err := c.Recv(p, 0)
			if err != nil {
				t.Error(err)
				return
			}
			bodies = append(bodies, resp.(*HTTPResponse).Body)
		}
	})
	k.Run()
	if served != 3 || len(bodies) != 3 {
		t.Fatalf("served %d, got %d responses", served, len(bodies))
	}
	if bodies[0] != 1 || bodies[1] != 2 || bodies[2] != 3 {
		t.Fatalf("bodies = %v, want [1 2 3]", bodies)
	}
}

func TestHTTPNilResponseIs500(t *testing.T) {
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return nil
	})
	var res *HTTPResult
	var err error
	k.Go("client", func(p *sim.Proc) {
		res, err = a.HTTPGet(p, b.IP(), 80, &HTTPRequest{Method: "GET", Path: "/"}, 0)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp == nil || res.Resp.Status != 500 {
		t.Fatalf("resp = %+v, want synthesized 500", res.Resp)
	}
}

func TestHTTPIgnoresForeignPayload(t *testing.T) {
	// A non-HTTPRequest payload on the server connection is skipped, not
	// answered — the next real request still gets its response.
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200, Size: minWireSize}
	})
	var status int
	k.Go("client", func(p *sim.Proc) {
		c, err := a.Dial(p, b.IP(), 80, 0)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		if err := c.Send(minWireSize, "not an http request"); err != nil {
			t.Error(err)
			return
		}
		if err := c.Send(minWireSize, &HTTPRequest{Method: "GET", Path: "/"}); err != nil {
			t.Error(err)
			return
		}
		resp, err := c.Recv(p, 0)
		if err != nil {
			t.Error(err)
			return
		}
		status = resp.(*HTTPResponse).Status
	})
	k.Run()
	if status != 200 {
		t.Fatalf("status = %d, want 200 (foreign payload must be skipped)", status)
	}
}

func TestHTTPSizeClamping(t *testing.T) {
	// Tiny request/response sizes are clamped to the minimum wire size, so
	// round-trip timing never falls below the control-segment cost.
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond, Bandwidth: 8 * Mbps})
	var reqSize Bytes
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		reqSize = req.Size
		return &HTTPResponse{Status: 200, Size: 1} // clamped on send
	})
	var res *HTTPResult
	var err error
	k.Go("client", func(p *sim.Proc) {
		res, err = a.HTTPGet(p, b.IP(), 80, &HTTPRequest{Method: "GET", Path: "/", Size: 1}, 0)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reqSize != minWireSize {
		t.Errorf("server saw request size %d, want clamp to %d", reqSize, minWireSize)
	}
	if res.Total <= res.Connect {
		t.Errorf("Total %v must exceed Connect %v", res.Total, res.Connect)
	}
}

func TestHTTPGetTimeoutDuringResponse(t *testing.T) {
	// The handler sleeps past the deadline: HTTPGet must give up with
	// ErrTimeout even though the connection established fine.
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		p.Sleep(time.Second)
		return &HTTPResponse{Status: 200}
	})
	var err error
	k.Go("client", func(p *sim.Proc) {
		_, err = a.HTTPGet(p, b.IP(), 80, &HTTPRequest{Method: "GET", Path: "/"}, 100*time.Millisecond)
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestHTTPGetTimeoutConsumedByDial(t *testing.T) {
	// When the handshake alone eats the whole budget, HTTPGet reports
	// ErrTimeout instead of waiting forever on the response.
	k, _, a, b := pair(t, LinkConfig{Latency: 30 * time.Millisecond})
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200}
	})
	var err error
	k.Go("client", func(p *sim.Proc) {
		// Handshake costs 4 hops x 30 ms = 120 ms; budget is 121 ms, so
		// the deadline expires between connect and response.
		_, err = a.HTTPGet(p, b.IP(), 80, &HTTPRequest{Method: "GET", Path: "/"}, 121*time.Millisecond)
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestHTTPGetRefused(t *testing.T) {
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	var err error
	k.Go("client", func(p *sim.Proc) {
		_, err = a.HTTPGet(p, b.IP(), 80, &HTTPRequest{Method: "GET", Path: "/"}, 0)
	})
	k.Run()
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}
