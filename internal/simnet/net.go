// Package simnet emulates the paper's testbed network (fig. 8) on the sim
// virtual clock: nodes connected by full-duplex links with propagation
// latency and fair-shared bandwidth, message-level packets with TCP-like
// connection semantics (SYN / SYN-ACK / RST / DATA), and port listeners.
//
// The model is message-level, not MTU-packet-level: one application message
// is one Packet whose serialization time on each link is size/rate, with the
// rate fair-shared among concurrent transfers in the same link direction.
// This captures propagation, serialization, and contention — the quantities
// the paper's timings are composed of — while keeping multi-hundred-MiB
// image pulls cheap to simulate. TCP slow start and retransmission are not
// modelled; connection setup costs one RTT (SYN / SYN-ACK), which matches
// the curl time_total measurement methodology of the paper.
//
// # Packet ownership
//
// Packets are recycled through a per-Network free list (NewPacket /
// FreePacket), so the datapath has explicit ownership rules (DESIGN.md §10):
//
//   - handing a packet to Port.Send transfers ownership to the network; the
//     sender must not touch it afterwards;
//   - on delivery, ownership passes to the receiving Node.HandlePacket.
//     Forwarding nodes (Switch, Router) pass ownership downstream — they may
//     rewrite headers in place because they are the sole owner (rewrites
//     need no copy; Clone was retired with this rule);
//   - terminal consumers return packets to the pool: hosts free control
//     segments (SYN/SYN-ACK/RST/FIN) after handling them, and DATA segments
//     are freed by Conn.Recv once the payload has been extracted;
//   - a node that holds a packet across events (the SDN controller holding
//     a punted SYN while a deployment runs) owns it until it re-injects it
//     (TableOut/PacketOut) or drops it;
//   - dropped packets (link down, loss, no route) are left to the garbage
//     collector: drops are off the hot path and never recycled, which keeps
//     the rules simple and use-after-free impossible on error paths;
//   - the one exception is a *severed* link (Host.Detach / Host.MoveTo): the
//     handover path is deliberately exercised at scale, so packets caught on
//     a dying link are dropped deterministically at their next transfer
//     event, counted (Link.Dropped, Network.DetachDrops), and returned to
//     the pool — a mobility workload must not leak a packet per handover.
package simnet

import (
	"fmt"
	"time"

	"transparentedge/internal/obs"
	"transparentedge/internal/sim"
)

// Addr is a network address (IPv4 dotted quad by convention).
type Addr string

// Bytes is a payload size in bytes.
type Bytes int64

// Common sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// BitsPerSec is a link rate. Zero means infinite bandwidth (latency only).
type BitsPerSec int64

// Common rates.
const (
	Mbps BitsPerSec = 1_000_000
	Gbps BitsPerSec = 1_000_000_000
)

// PacketKind distinguishes the TCP-ish segment types the simulation needs.
type PacketKind uint8

// Packet kinds.
const (
	KindSYN PacketKind = iota + 1
	KindSYNACK
	KindRST
	KindDATA
	KindFIN
)

func (k PacketKind) String() string {
	switch k {
	case KindSYN:
		return "SYN"
	case KindSYNACK:
		return "SYN-ACK"
	case KindRST:
		return "RST"
	case KindDATA:
		return "DATA"
	case KindFIN:
		return "FIN"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Packet is a message-level network packet. Header fields are mutable: the
// owner of a packet (see the package comment's ownership rules) may rewrite
// them in flight, as an OpenFlow switch does.
type Packet struct {
	Kind    PacketKind
	SrcIP   Addr
	DstIP   Addr
	SrcPort int
	DstPort int
	Size    Bytes // total size on the wire
	Payload any   // application payload, opaque to the network
	ID      uint64
	// Seq orders DATA segments within a connection (TCP never delivers
	// out of order, but fair-shared links can complete a small later
	// transfer before a large earlier one; the receiver re-sequences).
	Seq uint64
	// Encap marks an SRv6-style outer header applied in place at a steering
	// ingress point: DstIP/DstPort carry the encoded segment endpoint (the
	// instance) while InnerDstIP/InnerDstPort preserve the original service
	// address. Only the packet's current owner may set or clear these (the
	// same ownership rules as any header rewrite); FreePacket resets them
	// with the rest of the struct, so recycled packets never leak an old
	// encapsulation.
	Encap        bool
	InnerDstIP   Addr
	InnerDstPort int
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d (%dB)", p.Kind, p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, p.Size)
}

// minWireSize is the modelled on-wire size of control segments (SYN etc.).
const minWireSize Bytes = 64

// Node is anything attachable to the network that can receive packets.
type Node interface {
	// Name returns a diagnostic name.
	Name() string
	// HandlePacket processes a packet arriving on port in. It runs in
	// kernel (event) context and must not block. The packet is owned by the
	// node from this point on (forward it, free it, or hold it).
	HandlePacket(in *Port, pkt *Packet)
}

// Network owns the kernel, nodes, and links of one emulated topology.
type Network struct {
	K        *sim.Kernel
	links    []*Link
	nextPkt  uint64
	nodes    []Node
	PktTrace func(where string, pkt *Packet) // optional debug hook

	pktPool  []*Packet   // recycled packets (NewPacket / FreePacket)
	xferPool []*transfer // recycled link transfers with their events

	// DetachDrops counts packets dropped because their link was severed by a
	// host detach/handover (these drops free to the pool, unlike loss/down
	// drops — see the package comment).
	DetachDrops uint64

	// Obs counter handles (nil without SetObs; nil *obs.Counter no-ops).
	// gets - puts - drops bounds the packets still alive outside the free
	// list, so a growing residue over a steady-state run flags a leak.
	// Severed-link drops are counted separately (cDetachDrops) because they
	// return to the pool and must not skew that balance.
	cPoolGets, cPoolPuts, cDrops, cDetachDrops *obs.Counter
}

// SetObs registers the network's packet-pool and drop counters in the
// registry. A nil registry leaves the handles nil, keeping the datapath's
// zero-allocation hot path untouched.
func (n *Network) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n.cPoolGets = reg.Counter("simnet_packet_pool_gets_total")
	n.cPoolPuts = reg.Counter("simnet_packet_pool_puts_total")
	n.cDrops = reg.Counter("simnet_packet_drops_total")
	n.cDetachDrops = reg.Counter("simnet_detach_drops_total")
}

// NewNetwork returns an empty network bound to kernel k.
func NewNetwork(k *sim.Kernel) *Network { return &Network{K: k} }

// Register records a node for diagnostics (attachment happens via Connect).
func (n *Network) Register(node Node) { n.nodes = append(n.nodes, node) }

// NextPacketID returns a fresh unique packet ID.
func (n *Network) NextPacketID() uint64 {
	n.nextPkt++
	return n.nextPkt
}

// NewPacket returns a zeroed packet from the network's free list (or a fresh
// one). The caller owns it until it is handed to Port.Send.
func (n *Network) NewPacket() *Packet {
	n.cPoolGets.Inc()
	if ln := len(n.pktPool); ln > 0 {
		p := n.pktPool[ln-1]
		n.pktPool[ln-1] = nil
		n.pktPool = n.pktPool[:ln-1]
		return p
	}
	return &Packet{}
}

// FreePacket returns a packet to the free list. Only the packet's current
// owner may free it; the packet must not be referenced afterwards.
func (n *Network) FreePacket(p *Packet) {
	if p == nil {
		return
	}
	n.cPoolPuts.Inc()
	*p = Packet{}
	n.pktPool = append(n.pktPool, p)
}

// LinkConfig describes a full-duplex link.
type LinkConfig struct {
	Name      string
	Latency   time.Duration // one-way propagation delay
	Bandwidth BitsPerSec    // per-direction capacity; 0 = infinite
	// Loss is the probability in [0,1) that a packet is dropped on this
	// link. Draws come from a per-link-direction counter-keyed hash (not
	// the kernel RNG), so a link's drop pattern depends only on its name
	// and its own packet sequence — never on event interleaving elsewhere,
	// which keeps sharded runs bit-identical to serial ones.
	Loss float64
}

// Port is one end of a link, attached to a node.
type Port struct {
	node  Node
	link  *Link
	dir   *direction // transmit direction for this port
	peer  *Port
	Label string
	// deliver hands a packet to the peer node; built once at Connect time
	// so the per-packet send path allocates no closures.
	deliver func(*Packet)
}

// Node returns the node the port is attached to.
func (p *Port) Node() Node { return p.node }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// Link returns the link the port belongs to.
func (p *Port) Link() *Link { return p.link }

// Send transmits pkt out of this port toward the peer node, transferring
// ownership of pkt to the network. Delivery happens after serialization
// (fair-shared bandwidth) plus propagation latency.
func (p *Port) Send(pkt *Packet) {
	if pkt.Size < minWireSize {
		pkt.Size = minWireSize
	}
	p.dir.transmit(pkt, p.deliver)
}

// Link is a full-duplex point-to-point link with independent per-direction
// fair-shared capacity.
type Link struct {
	net  *Network
	cfg  LinkConfig
	a, b *Port
	ab   direction
	ba   direction
	down bool
	// severed marks a link permanently cut by Host.Detach/MoveTo. Unlike
	// down (a transient failure whose drops are left to the GC), a severed
	// link deterministically drops every in-flight packet at its next
	// transfer event and returns it to the pool; nothing is ever delivered
	// from either port again.
	severed bool
	// extraLoss / extraLatency are fault-injection impairments added on
	// top of the configured loss and propagation delay (see Impair). Both
	// zero by default, in which case the datapath behaves exactly as
	// configured — no extra RNG draw, no added delay.
	extraLoss    float64
	extraLatency time.Duration
	// Dropped counts packets lost to failures or configured loss.
	Dropped uint64
	// remote, when non-nil, marks this link as the local half of a
	// cross-shard link (see Fabric): serialization and loss happen here,
	// but instead of local delivery the packet ships to another domain's
	// network as a timestamped inter-shard message.
	remote *remoteHalf
}

// Impair adds loss probability and one-way latency to the link on top of
// its configuration — the fault plan's degraded-backhaul knob. Impair(0, 0)
// restores the configured behavior.
func (l *Link) Impair(loss float64, extraLatency time.Duration) {
	l.extraLoss = loss
	l.extraLatency = extraLatency
}

// latency returns the effective one-way propagation delay.
func (l *Link) latency() time.Duration { return l.cfg.Latency + l.extraLatency }

// SetDown takes the link down (packets are silently dropped) or brings it
// back up — the simulation's cable pull for failure injection.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is down.
func (l *Link) Down() bool { return l.down }

// Severed reports whether the link was permanently cut by a host detach.
func (l *Link) Severed() bool { return l.severed }

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Connect creates a link between nodes a and b and returns the two ports
// (the first attached to a, the second to b).
func (n *Network) Connect(a, b Node, cfg LinkConfig) (*Port, *Port) {
	l := &Link{net: n, cfg: cfg}
	l.ab = direction{link: l, lossSeed: splitmix64(fnv64(cfg.Name) ^ 1)}
	l.ba = direction{link: l, lossSeed: splitmix64(fnv64(cfg.Name) ^ 2)}
	pa := &Port{node: a, link: l, dir: &l.ab}
	pb := &Port{node: b, link: l, dir: &l.ba}
	pa.peer, pb.peer = pb, pa
	pa.deliver = pa.deliverToPeer
	pb.deliver = pb.deliverToPeer
	l.a, l.b = pa, pb
	n.links = append(n.links, l)
	return pa, pb
}

// ImpairAll applies the same loss/latency impairment to every link of the
// network (the fault plan's whole-backhaul degradation). Zero arguments
// restore configured behavior everywhere.
func (n *Network) ImpairAll(loss float64, extraLatency time.Duration) {
	for _, l := range n.links {
		l.Impair(loss, extraLatency)
	}
}

// deliverToPeer is the persistent delivery callback of a port (bound once at
// Connect): trace hook, then hand the packet to the peer node.
func (p *Port) deliverToPeer(delivered *Packet) {
	peer := p.peer
	if peer == nil {
		return
	}
	if p.link.net.PktTrace != nil {
		p.link.net.PktTrace(peer.node.Name(), delivered)
	}
	peer.node.HandlePacket(peer, delivered)
}

// transfer is one in-flight transmission on a link. It owns a persistent
// re-armable kernel event used twice per packet — first for serialization
// completion, then for the propagation-latency delivery — and is recycled
// through the network's free list, so the steady-state per-packet datapath
// performs zero heap allocations.
type transfer struct {
	dir        *direction
	remaining  float64 // bytes left to serialize
	rate       float64 // current bytes/sec share
	updated    sim.Time
	finish     *sim.Event // persistent; re-armed via Kernel.Schedule
	pkt        *Packet
	deliver    func(*Packet)
	delivering bool // false: serializing; true: in the latency stage
}

// fire is the transfer's event callback for both stages.
func (t *transfer) fire() {
	if t.dir.link.severed {
		// The link was cut while this packet was in flight (serializing or
		// already in the latency stage): it dies here, deterministically, at
		// the time its next event was due. No delivery from a dead port.
		t.dir.dropSevered(t)
		return
	}
	if !t.delivering {
		t.dir.complete(t)
		return
	}
	net := t.dir.link.net
	pkt, deliver := t.pkt, t.deliver
	t.pkt = nil
	t.deliver = nil
	t.dir = nil
	t.delivering = false
	net.xferPool = append(net.xferPool, t)
	deliver(pkt)
}

// getTransfer takes a transfer from the free list (or builds one with its
// persistent event) and binds it to direction d.
func (n *Network) getTransfer(d *direction) *transfer {
	if ln := len(n.xferPool); ln > 0 {
		t := n.xferPool[ln-1]
		n.xferPool[ln-1] = nil
		n.xferPool = n.xferPool[:ln-1]
		t.dir = d
		return t
	}
	t := &transfer{dir: d}
	t.finish = n.K.NewEvent(t.fire)
	return t
}

// direction models fair-share (equal split) bandwidth for one direction of a
// link: each active transfer gets capacity/n. On every membership change the
// remaining bytes are settled at the old rate and completions rescheduled.
// Active transfers are kept in an ordered slice (arrival order), so the
// reschedule sequence — and with it the event ordering — is deterministic.
type direction struct {
	link   *Link
	active []*transfer
	// lossSeed/lossN drive the deterministic per-direction loss draws: the
	// n-th packet entering this direction sees splitmix64(seed, n), which
	// is independent of every other link and of event interleaving.
	lossSeed uint64
	lossN    uint64
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap
// high-quality bijective mixer (same construction the fault plan uses for
// interleaving-independent decisions).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// fnv64 hashes a string with FNV-1a (seed material for loss draws).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// lossDraw returns the next uniform [0,1) variate of this direction's
// deterministic drop sequence.
func (d *direction) lossDraw() float64 {
	d.lossN++
	return float64(splitmix64(d.lossSeed+d.lossN)>>11) / float64(1<<53)
}

func (d *direction) capacityBps() float64 {
	return float64(d.link.cfg.Bandwidth) / 8.0 // bytes per second
}

func (d *direction) transmit(pkt *Packet, deliver func(*Packet)) {
	k := d.link.net.K
	if d.link.severed {
		// A send into a severed link (e.g. the peer switch still routing at
		// the old port) drops immediately, back to the pool.
		d.countSevered()
		d.link.net.FreePacket(pkt)
		return
	}
	loss := d.link.cfg.Loss + d.link.extraLoss
	if d.link.down || (loss > 0 && d.lossDraw() < loss) {
		d.link.Dropped++
		d.link.net.cDrops.Inc()
		return // dropped packets are not recycled (see package comment)
	}
	lat := d.link.latency()
	if d.link.cfg.Bandwidth <= 0 {
		if d.link.remote != nil {
			// Infinite bandwidth on a cross-shard link: ship immediately
			// with the propagation delay as the delivery offset.
			d.link.shipRemote(pkt, k.Now()+lat)
			return
		}
		// Infinite bandwidth: propagation only.
		t := d.link.net.getTransfer(d)
		t.pkt = pkt
		t.deliver = deliver
		t.delivering = true
		k.Schedule(t.finish, k.Now()+lat)
		return
	}
	t := d.link.net.getTransfer(d)
	t.pkt = pkt
	t.deliver = deliver
	t.remaining = float64(pkt.Size)
	t.updated = k.Now()
	t.delivering = false
	d.active = append(d.active, t)
	d.rebalance()
}

// settle updates remaining bytes of every active transfer to now.
func (d *direction) settle() {
	now := d.link.net.K.Now()
	for _, t := range d.active {
		elapsed := (now - t.updated).Seconds()
		t.remaining -= t.rate * elapsed
		if t.remaining < 0 {
			t.remaining = 0
		}
		t.updated = now
	}
}

// rebalance recomputes equal shares and reschedules completion events.
func (d *direction) rebalance() {
	d.settle()
	n := len(d.active)
	if n == 0 {
		return
	}
	k := d.link.net.K
	now := k.Now()
	share := d.capacityBps() / float64(n)
	for _, t := range d.active {
		t.rate = share
		dur := time.Duration(t.remaining / share * float64(time.Second))
		k.Schedule(t.finish, now+dur)
	}
}

func (d *direction) complete(t *transfer) {
	for i, a := range d.active {
		if a == t {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
	d.rebalance()
	k := d.link.net.K
	if d.link.remote != nil {
		// Cross-shard link: serialization is done; the propagation stage
		// happens as an inter-shard message on the destination kernel
		// (the sender may not schedule into the receiver's window).
		pkt := t.pkt
		t.pkt = nil
		t.deliver = nil
		t.dir = nil
		d.link.net.xferPool = append(d.link.net.xferPool, t)
		d.link.shipRemote(pkt, k.Now()+d.link.latency())
		return
	}
	// Enter the latency stage on the same persistent event.
	t.delivering = true
	k.Schedule(t.finish, k.Now()+d.link.latency())
}

// countSevered accounts one severed-link drop (per-link and network-wide).
func (d *direction) countSevered() {
	d.link.Dropped++
	d.link.net.DetachDrops++
	d.link.net.cDetachDrops.Inc()
}

// dropSevered retires a transfer whose link was severed mid-flight: the
// packet returns to the pool, the drop is counted, and the transfer (with
// its persistent event) is recycled.
func (d *direction) dropSevered(t *transfer) {
	if !t.delivering {
		for i, a := range d.active {
			if a == t {
				d.active = append(d.active[:i], d.active[i+1:]...)
				break
			}
		}
		// No rebalance: every other transfer on this direction is equally
		// doomed and will drop at its own already-scheduled event.
	}
	net := d.link.net
	d.countSevered()
	net.FreePacket(t.pkt)
	t.pkt = nil
	t.deliver = nil
	t.dir = nil
	t.delivering = false
	net.xferPool = append(net.xferPool, t)
}

// ActiveTransfers returns the number of in-flight transfers a->b and b->a
// (diagnostic).
func (l *Link) ActiveTransfers() (ab, ba int) {
	return len(l.ab.active), len(l.ba.active)
}
