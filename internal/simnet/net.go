// Package simnet emulates the paper's testbed network (fig. 8) on the sim
// virtual clock: nodes connected by full-duplex links with propagation
// latency and fair-shared bandwidth, message-level packets with TCP-like
// connection semantics (SYN / SYN-ACK / RST / DATA), and port listeners.
//
// The model is message-level, not MTU-packet-level: one application message
// is one Packet whose serialization time on each link is size/rate, with the
// rate fair-shared among concurrent transfers in the same link direction.
// This captures propagation, serialization, and contention — the quantities
// the paper's timings are composed of — while keeping multi-hundred-MiB
// image pulls cheap to simulate. TCP slow start and retransmission are not
// modelled; connection setup costs one RTT (SYN / SYN-ACK), which matches
// the curl time_total measurement methodology of the paper.
package simnet

import (
	"fmt"
	"time"

	"transparentedge/internal/sim"
)

// Addr is a network address (IPv4 dotted quad by convention).
type Addr string

// Bytes is a payload size in bytes.
type Bytes int64

// Common sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// BitsPerSec is a link rate. Zero means infinite bandwidth (latency only).
type BitsPerSec int64

// Common rates.
const (
	Mbps BitsPerSec = 1_000_000
	Gbps BitsPerSec = 1_000_000_000
)

// PacketKind distinguishes the TCP-ish segment types the simulation needs.
type PacketKind uint8

// Packet kinds.
const (
	KindSYN PacketKind = iota + 1
	KindSYNACK
	KindRST
	KindDATA
	KindFIN
)

func (k PacketKind) String() string {
	switch k {
	case KindSYN:
		return "SYN"
	case KindSYNACK:
		return "SYN-ACK"
	case KindRST:
		return "RST"
	case KindDATA:
		return "DATA"
	case KindFIN:
		return "FIN"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Packet is a message-level network packet. Header fields are mutable so an
// OpenFlow-style switch can rewrite them in flight.
type Packet struct {
	Kind    PacketKind
	SrcIP   Addr
	DstIP   Addr
	SrcPort int
	DstPort int
	Size    Bytes // total size on the wire
	Payload any   // application payload, opaque to the network
	ID      uint64
	// Seq orders DATA segments within a connection (TCP never delivers
	// out of order, but fair-shared links can complete a small later
	// transfer before a large earlier one; the receiver re-sequences).
	Seq uint64
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d (%dB)", p.Kind, p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, p.Size)
}

// Clone returns a shallow copy (payload shared) so header rewrites do not
// affect other holders of the packet.
func (p *Packet) Clone() *Packet {
	cp := *p
	return &cp
}

// minWireSize is the modelled on-wire size of control segments (SYN etc.).
const minWireSize Bytes = 64

// Node is anything attachable to the network that can receive packets.
type Node interface {
	// Name returns a diagnostic name.
	Name() string
	// HandlePacket processes a packet arriving on port in. It runs in
	// kernel (event) context and must not block.
	HandlePacket(in *Port, pkt *Packet)
}

// Network owns the kernel, nodes, and links of one emulated topology.
type Network struct {
	K        *sim.Kernel
	links    []*Link
	nextPkt  uint64
	nodes    []Node
	PktTrace func(where string, pkt *Packet) // optional debug hook
}

// NewNetwork returns an empty network bound to kernel k.
func NewNetwork(k *sim.Kernel) *Network { return &Network{K: k} }

// Register records a node for diagnostics (attachment happens via Connect).
func (n *Network) Register(node Node) { n.nodes = append(n.nodes, node) }

// NextPacketID returns a fresh unique packet ID.
func (n *Network) NextPacketID() uint64 {
	n.nextPkt++
	return n.nextPkt
}

// LinkConfig describes a full-duplex link.
type LinkConfig struct {
	Name      string
	Latency   time.Duration // one-way propagation delay
	Bandwidth BitsPerSec    // per-direction capacity; 0 = infinite
	// Loss is the probability in [0,1) that a packet is dropped on this
	// link (drawn from the kernel's deterministic RNG).
	Loss float64
}

// Port is one end of a link, attached to a node.
type Port struct {
	node  Node
	link  *Link
	dir   *direction // transmit direction for this port
	peer  *Port
	Label string
}

// Node returns the node the port is attached to.
func (p *Port) Node() Node { return p.node }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// Link returns the link the port belongs to.
func (p *Port) Link() *Link { return p.link }

// Send transmits pkt out of this port toward the peer node. Delivery happens
// after serialization (fair-shared bandwidth) plus propagation latency.
func (p *Port) Send(pkt *Packet) {
	if pkt.Size < minWireSize {
		pkt.Size = minWireSize
	}
	p.dir.transmit(pkt, func(delivered *Packet) {
		peer := p.peer
		if peer == nil {
			return
		}
		if p.link.net.PktTrace != nil {
			p.link.net.PktTrace(peer.node.Name(), delivered)
		}
		peer.node.HandlePacket(peer, delivered)
	})
}

// Link is a full-duplex point-to-point link with independent per-direction
// fair-shared capacity.
type Link struct {
	net  *Network
	cfg  LinkConfig
	a, b *Port
	ab   direction
	ba   direction
	down bool
	// Dropped counts packets lost to failures or configured loss.
	Dropped uint64
}

// SetDown takes the link down (packets are silently dropped) or brings it
// back up — the simulation's cable pull for failure injection.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is down.
func (l *Link) Down() bool { return l.down }

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Connect creates a link between nodes a and b and returns the two ports
// (the first attached to a, the second to b).
func (n *Network) Connect(a, b Node, cfg LinkConfig) (*Port, *Port) {
	l := &Link{net: n, cfg: cfg}
	l.ab = direction{link: l}
	l.ba = direction{link: l}
	pa := &Port{node: a, link: l, dir: &l.ab}
	pb := &Port{node: b, link: l, dir: &l.ba}
	pa.peer, pb.peer = pb, pa
	l.a, l.b = pa, pb
	n.links = append(n.links, l)
	return pa, pb
}

// transfer is one in-flight serialization on a link direction.
type transfer struct {
	remaining float64 // bytes left to serialize
	rate      float64 // current bytes/sec share
	updated   sim.Time
	finish    *sim.Event
	pkt       *Packet
	deliver   func(*Packet)
}

// direction models fair-share (equal split) bandwidth for one direction of a
// link: each active transfer gets capacity/n. On every membership change the
// remaining bytes are settled at the old rate and completions rescheduled.
type direction struct {
	link   *Link
	active map[*transfer]struct{}
}

func (d *direction) capacityBps() float64 {
	return float64(d.link.cfg.Bandwidth) / 8.0 // bytes per second
}

func (d *direction) transmit(pkt *Packet, deliver func(*Packet)) {
	k := d.link.net.K
	if d.link.down || (d.link.cfg.Loss > 0 && k.Rand().Float64() < d.link.cfg.Loss) {
		d.link.Dropped++
		return
	}
	lat := d.link.cfg.Latency
	if d.link.cfg.Bandwidth <= 0 {
		// Infinite bandwidth: propagation only.
		k.AfterFree(lat, func() { deliver(pkt) })
		return
	}
	t := &transfer{
		remaining: float64(pkt.Size),
		updated:   k.Now(),
		pkt:       pkt,
		deliver:   deliver,
	}
	if d.active == nil {
		d.active = make(map[*transfer]struct{})
	}
	d.active[t] = struct{}{}
	d.rebalance()
}

// settle updates remaining bytes of every active transfer to now.
func (d *direction) settle() {
	now := d.link.net.K.Now()
	for t := range d.active {
		elapsed := (now - t.updated).Seconds()
		t.remaining -= t.rate * elapsed
		if t.remaining < 0 {
			t.remaining = 0
		}
		t.updated = now
	}
}

// rebalance recomputes equal shares and reschedules completion events.
func (d *direction) rebalance() {
	d.settle()
	n := len(d.active)
	if n == 0 {
		return
	}
	k := d.link.net.K
	share := d.capacityBps() / float64(n)
	for t := range d.active {
		t.rate = share
		if t.finish != nil {
			t.finish.Cancel()
		}
		tt := t
		dur := time.Duration(tt.remaining / share * float64(time.Second))
		t.finish = k.After(dur, func() { d.complete(tt) })
	}
}

func (d *direction) complete(t *transfer) {
	delete(d.active, t)
	d.rebalance()
	lat := d.link.cfg.Latency
	d.link.net.K.AfterFree(lat, func() { t.deliver(t.pkt) })
}

// ActiveTransfers returns the number of in-flight transfers a->b and b->a
// (diagnostic).
func (l *Link) ActiveTransfers() (ab, ba int) {
	return len(l.ab.active), len(l.ba.active)
}
