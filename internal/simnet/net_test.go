package simnet

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"transparentedge/internal/sim"
)

// pair builds two hosts connected via a router with symmetric links.
func pair(t *testing.T, cfg LinkConfig) (*sim.Kernel, *Network, *Host, *Host) {
	t.Helper()
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	b := NewHost(n, "b", "10.0.0.2")
	r := NewRouter(n, "r")
	_, ra := a.AttachTo(r, cfg)
	_, rb := b.AttachTo(r, cfg)
	r.AddRoute(a.IP(), ra)
	r.AddRoute(b.IP(), rb)
	return k, n, a, b
}

func TestDialAndRequest(t *testing.T) {
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200, Size: 1 * KiB, Body: "hello"}
	})
	var res *HTTPResult
	var err error
	k.Go("client", func(p *sim.Proc) {
		res, err = a.HTTPGet(p, b.IP(), 80, &HTTPRequest{Method: "GET", Path: "/"}, 0)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp.Status != 200 || res.Resp.Body != "hello" {
		t.Fatalf("resp = %+v", res.Resp)
	}
	// handshake = 2 hops each way over 2 links of 1 ms = 4 ms;
	// request + response = another 4 ms.
	if res.Connect != 4*time.Millisecond {
		t.Errorf("Connect = %v, want 4ms", res.Connect)
	}
	if res.Total != 8*time.Millisecond {
		t.Errorf("Total = %v, want 8ms", res.Total)
	}
}

func TestConnRefusedWhenNoListener(t *testing.T) {
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	var err error
	k.Go("client", func(p *sim.Proc) {
		_, err = a.Dial(p, b.IP(), 8080, 0)
	})
	k.Run()
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestConnRefusedThenOpen(t *testing.T) {
	// The SDN controller's readiness probe pattern: dial until accepted.
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	k.After(50*time.Millisecond, func() {
		b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
			return &HTTPResponse{Status: 200}
		})
	})
	var okAt time.Duration
	k.Go("prober", func(p *sim.Proc) {
		for {
			c, err := a.Dial(p, b.IP(), 80, 0)
			if err == nil {
				okAt = p.Now()
				c.Close()
				return
			}
			p.Sleep(10 * time.Millisecond)
		}
	})
	k.Run()
	if okAt < 50*time.Millisecond || okAt > 80*time.Millisecond {
		t.Fatalf("port open detected at %v, want shortly after 50ms", okAt)
	}
}

func TestDialTimeout(t *testing.T) {
	// Destination exists but no route -> SYN dropped -> timeout.
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	r := NewRouter(n, "r")
	a.AttachTo(r, LinkConfig{Latency: time.Millisecond})
	var err error
	var at time.Duration
	k.Go("client", func(p *sim.Proc) {
		_, err = a.Dial(p, "10.9.9.9", 80, 2*time.Second)
		at = p.Now()
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) || at != 2*time.Second {
		t.Fatalf("err=%v at=%v, want timeout at 2s", err, at)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 8 MiB over ~83.9 Mbps-ish: use 8 Mbit payload over 1 Mbps = 8 s.
	k, _, a, b := pair(t, LinkConfig{Latency: 0, Bandwidth: 1 * Mbps})
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200, Size: minWireSize}
	})
	var res *HTTPResult
	k.Go("client", func(p *sim.Proc) {
		res, _ = a.HTTPGet(p, b.IP(), 80, &HTTPRequest{Size: 125_000}, 0) // 1 Mbit
	})
	k.Run()
	// Request crosses two 1 Mbps links in series: 1 s + 1 s = 2 s, plus
	// small control segments.
	if res.Total < 2*time.Second || res.Total > 2100*time.Millisecond {
		t.Fatalf("Total = %v, want ~2s", res.Total)
	}
}

func TestFairShareTwoTransfers(t *testing.T) {
	// Two equal transfers sharing one direction finish together at ~2x the
	// solo time.
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	b := NewHost(n, "b", "10.0.0.2")
	pa, pb := n.Connect(a, b, LinkConfig{Latency: 0, Bandwidth: 8 * Mbps})
	a.SetUplink(pa)
	b.SetUplink(pb)
	var done []time.Duration
	b.Listen(80, func(p *sim.Proc, c *Conn) {
		for {
			if _, err := c.Recv(p, 0); err != nil {
				return
			}
			done = append(done, p.Now())
		}
	})
	k.Go("clients", func(p *sim.Proc) {
		c1, _ := a.Dial(p, b.IP(), 80, 0)
		c2, _ := a.Dial(p, b.IP(), 80, 0)
		// 1 MB each at 1 MB/s capacity: solo 1 s, shared 2 s.
		c1.Send(1_000_000, "x")
		c2.Send(1_000_000, "y")
	})
	k.Run()
	if len(done) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(done))
	}
	for _, d := range done {
		if d < 1900*time.Millisecond || d > 2100*time.Millisecond {
			t.Fatalf("delivery at %v, want ~2s (fair share)", d)
		}
	}
}

func TestFairShareLateJoiner(t *testing.T) {
	// Transfer A (2 MB) starts at t=0; transfer B (0.5 MB) joins at t=1s.
	// Capacity 1 MB/s. A runs solo for 1 s (1 MB done), then shares
	// 0.5 MB/s. B finishes at 1s + 1s = 2s; A has 0.5 MB left at t=2s,
	// finishes at 2.5 s.
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	b := NewHost(n, "b", "10.0.0.2")
	pa, pb := n.Connect(a, b, LinkConfig{Latency: 0, Bandwidth: 8 * Mbps})
	a.SetUplink(pa)
	b.SetUplink(pb)
	arrivals := map[string]time.Duration{}
	b.Listen(80, func(p *sim.Proc, c *Conn) {
		for {
			v, err := c.Recv(p, 0)
			if err != nil {
				return
			}
			arrivals[v.(*HTTPRequest).Path] = p.Now()
		}
	})
	k.Go("driver", func(p *sim.Proc) {
		c1, _ := a.Dial(p, b.IP(), 80, 0)
		c1.Send(2_000_000, &HTTPRequest{Path: "A"})
		p.Sleep(time.Second)
		c2, _ := a.Dial(p, b.IP(), 80, 0)
		c2.Send(500_000, &HTTPRequest{Path: "B"})
	})
	k.Run()
	within := func(got, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 100*time.Millisecond
	}
	if !within(arrivals["B"], 2*time.Second) {
		t.Errorf("B arrived at %v, want ~2s", arrivals["B"])
	}
	if !within(arrivals["A"], 2500*time.Millisecond) {
		t.Errorf("A arrived at %v, want ~2.5s", arrivals["A"])
	}
}

// Property: total bytes delivered equals total bytes sent regardless of the
// mix of concurrent transfer sizes (bandwidth conservation, no loss).
func TestQuickBandwidthConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 30 {
			return true
		}
		k := sim.New(5)
		n := NewNetwork(k)
		a := NewHost(n, "a", "10.0.0.1")
		b := NewHost(n, "b", "10.0.0.2")
		pa, pb := n.Connect(a, b, LinkConfig{Latency: time.Millisecond, Bandwidth: 100 * Mbps})
		a.SetUplink(pa)
		b.SetUplink(pb)
		var got Bytes
		var want Bytes
		b.Listen(80, func(p *sim.Proc, c *Conn) {
			for {
				v, err := c.Recv(p, 0)
				if err != nil {
					return
				}
				got += v.(*HTTPRequest).Size
			}
		})
		k.Go("driver", func(p *sim.Proc) {
			c, err := a.Dial(p, b.IP(), 80, 0)
			if err != nil {
				return
			}
			for _, s := range sizes {
				sz := Bytes(s) + minWireSize
				want += sz
				c.Send(sz, &HTTPRequest{Size: sz})
			}
		})
		k.Run()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeout(t *testing.T) {
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	b.Listen(80, func(p *sim.Proc, c *Conn) {
		// Accept but never respond.
		c.Recv(p, 0)
	})
	var err error
	k.Go("client", func(p *sim.Proc) {
		c, derr := a.Dial(p, b.IP(), 80, 0)
		if derr != nil {
			t.Errorf("dial: %v", derr)
			return
		}
		_, err = c.Recv(p, 500*time.Millisecond)
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestCloseDeliversFIN(t *testing.T) {
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	serverSawClose := false
	b.Listen(80, func(p *sim.Proc, c *Conn) {
		_, err := c.Recv(p, 0)
		serverSawClose = errors.Is(err, ErrConnClosed)
	})
	k.Go("client", func(p *sim.Proc) {
		c, _ := a.Dial(p, b.IP(), 80, 0)
		c.Close()
	})
	k.Run()
	if !serverSawClose {
		t.Fatal("server did not observe connection close")
	}
}

func TestHostProcDelay(t *testing.T) {
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	a.ProcDelay = 5 * time.Millisecond // slow client (RPi)
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200}
	})
	var res *HTTPResult
	k.Go("client", func(p *sim.Proc) {
		res, _ = a.HTTPGet(p, b.IP(), 80, &HTTPRequest{}, 0)
	})
	k.Run()
	// Client adds 5ms on SYN and on its DATA send: total = 8ms + 10ms.
	if res.Total != 18*time.Millisecond {
		t.Fatalf("Total = %v, want 18ms", res.Total)
	}
}

func TestDuplicateListenerPanics(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k)
	h := NewHost(n, "h", "10.0.0.1")
	h.Listen(80, func(p *sim.Proc, c *Conn) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Listen did not panic")
		}
	}()
	h.Listen(80, func(p *sim.Proc, c *Conn) {})
}

func TestListenerCloseRefusesNew(t *testing.T) {
	k, _, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	l := b.Listen(80, func(p *sim.Proc, c *Conn) {})
	l.Close()
	var err error
	k.Go("client", func(p *sim.Proc) {
		_, err = a.Dial(p, b.IP(), 80, 0)
	})
	k.Run()
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want refused after listener close", err)
	}
}

func TestPortOpen(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k)
	h := NewHost(n, "h", "10.0.0.1")
	if h.PortOpen(80) {
		t.Fatal("PortOpen on fresh host")
	}
	l := h.Listen(80, func(p *sim.Proc, c *Conn) {})
	if !h.PortOpen(80) {
		t.Fatal("PortOpen = false after Listen")
	}
	l.Close()
	if h.PortOpen(80) {
		t.Fatal("PortOpen = true after Close")
	}
}

func TestRouterDefaultRoute(t *testing.T) {
	// a -> r -> cloud fallback.
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	cloud := NewHost(n, "cloud", "203.0.113.10")
	r := NewRouter(n, "r")
	_, ra := a.AttachTo(r, LinkConfig{Latency: time.Millisecond})
	_, rc := cloud.AttachTo(r, LinkConfig{Latency: 20 * time.Millisecond})
	r.AddRoute(a.IP(), ra)
	r.SetDefault(rc)
	cloud.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200, Body: "cloud"}
	})
	var res *HTTPResult
	k.Go("client", func(p *sim.Proc) {
		res, _ = a.HTTPGet(p, "203.0.113.10", 80, &HTTPRequest{}, 0)
	})
	k.Run()
	if res == nil || res.Resp.Body != "cloud" {
		t.Fatalf("res = %+v, want cloud response", res)
	}
	// handshake + request/response = 2 round trips x (1+20)*2 ms = 84 ms.
	if res.Total != 84*time.Millisecond {
		t.Fatalf("Total = %v, want 84ms", res.Total)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Kind: KindSYN, SrcIP: "1.1.1.1", DstIP: "2.2.2.2", SrcPort: 5, DstPort: 80, Size: 64}
	if p.String() != "SYN 1.1.1.1:5->2.2.2.2:80 (64B)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestTracerRecordsDeliveries(t *testing.T) {
	k, n, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	tr := NewTracer(n)
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200}
	})
	k.Go("client", func(p *sim.Proc) {
		a.HTTPGet(p, b.IP(), 80, &HTTPRequest{}, 0)
	})
	k.Run()
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	// The SYN reaches the router first, then host b.
	entries := tr.Entries()
	if entries[0].Kind != KindSYN || entries[0].Node != "r" {
		t.Fatalf("first entry = %+v", entries[0])
	}
	sawData := false
	for _, e := range entries {
		if e.Kind == KindDATA && e.Node == "b" {
			sawData = true
		}
	}
	if !sawData {
		t.Fatalf("no DATA delivery to b in trace:\n%s", tr.String())
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTracerFilterAndLimit(t *testing.T) {
	k, n, a, b := pair(t, LinkConfig{Latency: time.Millisecond})
	tr := NewTracer(n)
	tr.Filter = func(src, dst Addr) bool { return dst == b.IP() }
	tr.Limit = 2
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200}
	})
	k.Go("client", func(p *sim.Proc) {
		a.HTTPGet(p, b.IP(), 80, &HTTPRequest{}, 0)
	})
	k.Run()
	if tr.Len() != 2 {
		t.Fatalf("entries = %d, want limit 2", tr.Len())
	}
	for _, e := range tr.Entries() {
		if e.Dst[:len(e.Dst)-3] != string(b.IP()) && e.Dst != string(b.IP())+":80" {
			t.Fatalf("filter leaked entry %+v", e)
		}
	}
}

func TestInOrderDeliveryUnderFairShare(t *testing.T) {
	// A large message followed by a small one on the SAME connection: the
	// small transfer finishes serialization first under fair sharing, but
	// the receiver must still see them in send order (TCP semantics).
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	b := NewHost(n, "b", "10.0.0.2")
	pa, pb := n.Connect(a, b, LinkConfig{Latency: time.Millisecond, Bandwidth: 8 * Mbps})
	a.SetUplink(pa)
	b.SetUplink(pb)
	var got []string
	b.Listen(80, func(p *sim.Proc, c *Conn) {
		for {
			v, err := c.Recv(p, 0)
			if err != nil {
				return
			}
			got = append(got, v.(*HTTPRequest).Path)
		}
	})
	k.Go("driver", func(p *sim.Proc) {
		c, err := a.Dial(p, b.IP(), 80, 0)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Send(2_000_000, &HTTPRequest{Path: "big"})
		c.Send(1_000, &HTTPRequest{Path: "small"})
	})
	k.Run()
	if len(got) != 2 || got[0] != "big" || got[1] != "small" {
		t.Fatalf("delivery order = %v, want [big small]", got)
	}
}

func TestFINAfterPipelinedData(t *testing.T) {
	// Close immediately after pipelined sends: the receiver must get all
	// messages before the connection closes, even though the tiny FIN
	// would outrun the large DATA transfer on the wire.
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	b := NewHost(n, "b", "10.0.0.2")
	pa, pb := n.Connect(a, b, LinkConfig{Latency: time.Millisecond, Bandwidth: 8 * Mbps})
	a.SetUplink(pa)
	b.SetUplink(pb)
	var got int
	sawClose := false
	b.Listen(80, func(p *sim.Proc, c *Conn) {
		for {
			_, err := c.Recv(p, 0)
			if err != nil {
				sawClose = errors.Is(err, ErrConnClosed)
				return
			}
			got++
		}
	})
	k.Go("driver", func(p *sim.Proc) {
		c, _ := a.Dial(p, b.IP(), 80, 0)
		c.Send(1_000_000, "one")
		c.Send(1_000_000, "two")
		c.Close()
	})
	k.Run()
	if got != 2 {
		t.Fatalf("messages before close = %d, want 2 (FIN outran DATA?)", got)
	}
	if !sawClose {
		t.Fatal("receiver did not observe close")
	}
}

// Property: any interleaving of message sizes on one connection arrives in
// send order, with nothing lost.
func TestQuickInOrderDelivery(t *testing.T) {
	f := func(sizes []uint32) bool {
		if len(sizes) == 0 || len(sizes) > 20 {
			return true
		}
		k := sim.New(13)
		n := NewNetwork(k)
		a := NewHost(n, "a", "10.0.0.1")
		b := NewHost(n, "b", "10.0.0.2")
		pa, pb := n.Connect(a, b, LinkConfig{Latency: time.Millisecond, Bandwidth: 50 * Mbps})
		a.SetUplink(pa)
		b.SetUplink(pb)
		var got []int
		b.Listen(80, func(p *sim.Proc, c *Conn) {
			for {
				v, err := c.Recv(p, 0)
				if err != nil {
					return
				}
				got = append(got, v.(int))
			}
		})
		k.Go("driver", func(p *sim.Proc) {
			c, err := a.Dial(p, b.IP(), 80, 0)
			if err != nil {
				return
			}
			for i, s := range sizes {
				c.Send(Bytes(s%2_000_000)+1, i)
			}
		})
		k.Run()
		if len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDownDropsPackets(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	b := NewHost(n, "b", "10.0.0.2")
	pa, pb := n.Connect(a, b, LinkConfig{Latency: time.Millisecond})
	a.SetUplink(pa)
	b.SetUplink(pb)
	link := pa.Link()
	b.ServeHTTP(80, func(p *sim.Proc, req *HTTPRequest) *HTTPResponse {
		return &HTTPResponse{Status: 200}
	})
	link.SetDown(true)
	var downErr, upErr error
	k.Go("client", func(p *sim.Proc) {
		_, downErr = a.Dial(p, b.IP(), 80, 200*time.Millisecond)
		link.SetDown(false)
		_, upErr = a.Dial(p, b.IP(), 80, 200*time.Millisecond)
	})
	k.Run()
	if !errors.Is(downErr, ErrTimeout) {
		t.Fatalf("dial over down link = %v, want timeout", downErr)
	}
	if upErr != nil {
		t.Fatalf("dial after link up = %v", upErr)
	}
	if link.Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestLinkLossDropsSomePackets(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k)
	a := NewHost(n, "a", "10.0.0.1")
	b := NewHost(n, "b", "10.0.0.2")
	pa, pb := n.Connect(a, b, LinkConfig{Latency: time.Millisecond, Loss: 0.5})
	a.SetUplink(pa)
	b.SetUplink(pb)
	received := 0
	b.Listen(80, func(p *sim.Proc, c *Conn) {
		for {
			if _, err := c.Recv(p, 0); err != nil {
				return
			}
			received++
		}
	})
	k.Go("client", func(p *sim.Proc) {
		// Dial may need retries under 50% loss.
		var c *Conn
		for c == nil {
			var err error
			c, err = a.Dial(p, b.IP(), 80, 100*time.Millisecond)
			if err != nil {
				c = nil
			}
		}
		for i := 0; i < 100; i++ {
			c.Send(KiB, i)
		}
	})
	k.RunUntil(time.Minute)
	if received == 0 || received == 100 {
		t.Fatalf("received = %d of 100 under 50%% loss, want some but not all", received)
	}
	if pa.Link().Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}
