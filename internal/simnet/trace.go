package simnet

import (
	"fmt"
	"strings"

	"transparentedge/internal/sim"
)

// TraceEntry is one recorded packet delivery.
type TraceEntry struct {
	At   sim.Time
	Node string // receiving node
	Kind PacketKind
	Src  string
	Dst  string
	Size Bytes
}

func (e TraceEntry) String() string {
	return fmt.Sprintf("%12v  %-12s %-8s %s -> %s (%dB)",
		e.At, e.Node, e.Kind, e.Src, e.Dst, e.Size)
}

// Tracer records packet deliveries across the network — the simulation's
// tcpdump. Install with Attach; optionally filter to specific addresses.
type Tracer struct {
	net     *Network
	entries []TraceEntry
	// Filter, when non-nil, keeps only packets whose src or dst address
	// it accepts.
	Filter func(src, dst Addr) bool
	// Limit caps the number of stored entries (0 = unlimited).
	Limit int
}

// NewTracer creates a tracer and attaches it to the network's packet hook.
func NewTracer(n *Network) *Tracer {
	t := &Tracer{net: n}
	n.PktTrace = t.record
	return t
}

// Detach removes the tracer from the network.
func (t *Tracer) Detach() {
	if t.net.PktTrace != nil {
		t.net.PktTrace = nil
	}
}

func (t *Tracer) record(where string, pkt *Packet) {
	if t.Filter != nil && !t.Filter(pkt.SrcIP, pkt.DstIP) {
		return
	}
	if t.Limit > 0 && len(t.entries) >= t.Limit {
		return
	}
	t.entries = append(t.entries, TraceEntry{
		At:   t.net.K.Now(),
		Node: where,
		Kind: pkt.Kind,
		Src:  fmt.Sprintf("%s:%d", pkt.SrcIP, pkt.SrcPort),
		Dst:  fmt.Sprintf("%s:%d", pkt.DstIP, pkt.DstPort),
		Size: pkt.Size,
	})
}

// Entries returns the recorded deliveries in order.
func (t *Tracer) Entries() []TraceEntry {
	return append([]TraceEntry(nil), t.entries...)
}

// Len returns the number of recorded entries.
func (t *Tracer) Len() int { return len(t.entries) }

// Reset clears the recorded entries.
func (t *Tracer) Reset() { t.entries = nil }

// String renders the trace, one delivery per line.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, e := range t.entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
