// Package spec implements the paper's edge service definition files (§V):
// every edge service is described by a Kubernetes Deployment YAML (the only
// mandatory field is the container image), and the system automatically
// annotates it before deployment — unique worldwide name, matchLabels, the
// edge.service label, replicas=0 ("scale to zero"), an optional
// schedulerName for a configured Local Scheduler — and generates the
// Kubernetes Service definition if the developer did not include one.
//
// The same (annotated) definition drives both cluster types: Kubernetes
// consumes the full Deployment/Service documents, Docker parses the subset
// it needs (containers, ports, env, volume mounts).
package spec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"transparentedge/internal/simnet"
	"transparentedge/internal/yaml"
)

// EdgeServiceLabel is the label added to every edge deployment so edge
// services can be addressed and queried distinctly in a cluster.
const EdgeServiceLabel = "edge.service"

// Errors returned when parsing or annotating definitions.
var (
	ErrNoDeployment = errors.New("spec: no Deployment document found")
	ErrNoContainers = errors.New("spec: deployment has no containers")
	ErrNoImage      = errors.New("spec: container without image")
)

// Registration identifies a registered edge service by the unique
// combination the paper uses: domain name / IP address and port.
type Registration struct {
	Domain string      // e.g. "api.example.com"
	VIP    simnet.Addr // the public (cloud) IP clients address
	Port   int         // the public service port
}

// UniqueName derives the worldwide-unique service name the annotator
// assigns (paper §V: "we automatically set a unique worldwide name").
func (r Registration) UniqueName() string {
	d := strings.ToLower(r.Domain)
	if d == "" {
		d = strings.ReplaceAll(string(r.VIP), ".", "-")
	}
	d = strings.NewReplacer(".", "-", "/", "-", ":", "-").Replace(d)
	return fmt.Sprintf("edge-%s-%d", d, r.Port)
}

// ContainerSpec is the per-container subset both cluster types consume.
type ContainerSpec struct {
	Name          string
	Image         string
	ContainerPort int // 0 when the container exposes no port
	Env           map[string]string
	Mounts        []Mount
	// CPUMillis / MemoryBytes are the container's resource requests
	// (resources.requests in the definition); zero means unspecified.
	CPUMillis   int64
	MemoryBytes int64
}

// Mount is a volume mount (name -> path in container); HostPath is filled
// from the pod-level volume when it is a hostPath volume.
type Mount struct {
	Name          string
	ContainerPath string
	HostPath      string
}

// Definition is a parsed service definition file.
type Definition struct {
	Deployment map[string]any
	Service    map[string]any // nil unless the developer supplied one
}

// Parse reads a service definition YAML (one Deployment document, plus an
// optional Service document).
func Parse(src string) (*Definition, error) {
	docs, err := yaml.DecodeAll(src)
	if err != nil {
		return nil, err
	}
	def := &Definition{}
	for _, d := range docs {
		m, ok := d.(map[string]any)
		if !ok {
			continue
		}
		switch m["kind"] {
		case "Service":
			def.Service = m
		case "Deployment", nil:
			// kind may be omitted in lean definitions; the paper's files
			// only require the image name.
			if def.Deployment == nil {
				def.Deployment = m
			}
		default:
			if def.Deployment == nil && m["kind"] == nil {
				def.Deployment = m
			}
		}
	}
	if def.Deployment == nil {
		return nil, ErrNoDeployment
	}
	return def, nil
}

// Annotated is the deployment-ready service: fully annotated documents and
// the parsed container list.
type Annotated struct {
	Reg        Registration
	UniqueName string
	Deployment map[string]any
	Service    map[string]any
	Containers []ContainerSpec
	// TargetPort is the container port the generated/declared Service
	// forwards to (the port the controller probes for readiness).
	TargetPort int
	// RuntimeClass is the pod spec's runtimeClassName ("" = regular
	// containers, "wasm" = a serverless/WebAssembly runtime): the
	// placement signal for side-by-side container/serverless operation
	// (paper §VIII).
	RuntimeClass string
}

// Options configures annotation.
type Options struct {
	// SchedulerName, when non-empty, is set on the pod template so a
	// custom Local Scheduler handles these pods (paper §IV-B/§V).
	SchedulerName string
}

// Annotate applies the automatic annotations of §V to def for the given
// registration and returns the deployment-ready service.
func Annotate(def *Definition, reg Registration, opts Options) (*Annotated, error) {
	name := reg.UniqueName()
	dep := deepCopy(def.Deployment).(map[string]any)

	ensureMap(dep, "metadata")["name"] = name
	labels := ensureMap(ensureMap(dep, "metadata"), "labels")
	labels["app"] = name
	labels[EdgeServiceLabel] = name

	spec := ensureMap(dep, "spec")
	// "Scale to zero" by default: the controller scales up on demand.
	spec["replicas"] = int64(0)
	selector := ensureMap(spec, "selector")
	match := ensureMap(selector, "matchLabels")
	match["app"] = name
	match[EdgeServiceLabel] = name

	tmpl := ensureMap(spec, "template")
	tmplLabels := ensureMap(ensureMap(tmpl, "metadata"), "labels")
	tmplLabels["app"] = name
	tmplLabels[EdgeServiceLabel] = name
	podSpec := ensureMap(tmpl, "spec")
	if opts.SchedulerName != "" {
		podSpec["schedulerName"] = opts.SchedulerName
	}

	containers, err := parseContainers(podSpec)
	if err != nil {
		return nil, err
	}
	runtimeClass, _ := podSpec["runtimeClassName"].(string)

	targetPort := 0
	for _, c := range containers {
		if c.ContainerPort > 0 {
			targetPort = c.ContainerPort
			break
		}
	}
	if targetPort == 0 {
		targetPort = reg.Port
	}

	svc := def.Service
	if svc == nil {
		svc = map[string]any{
			"apiVersion": "v1",
			"kind":       "Service",
			"metadata": map[string]any{
				"name":   name,
				"labels": map[string]any{EdgeServiceLabel: name},
			},
			"spec": map[string]any{
				"selector": map[string]any{"app": name},
				"ports": []any{map[string]any{
					"protocol":   "TCP",
					"port":       int64(reg.Port),
					"targetPort": int64(targetPort),
				}},
			},
		}
	} else {
		svc = deepCopy(svc).(map[string]any)
		ensureMap(svc, "metadata")["name"] = name
		ensureMap(ensureMap(svc, "metadata"), "labels")[EdgeServiceLabel] = name
		ensureMap(ensureMap(svc, "spec"), "selector")["app"] = name
		if tp := declaredTargetPort(svc); tp > 0 {
			targetPort = tp
		}
	}

	return &Annotated{
		Reg:          reg,
		UniqueName:   name,
		Deployment:   dep,
		Service:      svc,
		Containers:   containers,
		TargetPort:   targetPort,
		RuntimeClass: runtimeClass,
	}, nil
}

func declaredTargetPort(svc map[string]any) int {
	spec, _ := svc["spec"].(map[string]any)
	ports, _ := spec["ports"].([]any)
	for _, pv := range ports {
		pm, ok := pv.(map[string]any)
		if !ok {
			continue
		}
		if tp, ok := pm["targetPort"].(int64); ok {
			return int(tp)
		}
		if pp, ok := pm["port"].(int64); ok {
			return int(pp)
		}
	}
	return 0
}

func parseContainers(podSpec map[string]any) ([]ContainerSpec, error) {
	raw, _ := podSpec["containers"].([]any)
	if len(raw) == 0 {
		return nil, ErrNoContainers
	}
	// Pod-level volumes: name -> host path (hostPath volumes only; other
	// volume types have no host directory to share).
	hostPaths := map[string]string{}
	if vols, ok := podSpec["volumes"].([]any); ok {
		for _, vv := range vols {
			vm, ok := vv.(map[string]any)
			if !ok {
				continue
			}
			vname, _ := vm["name"].(string)
			if hp, ok := vm["hostPath"].(map[string]any); ok {
				if path, ok := hp["path"].(string); ok {
					hostPaths[vname] = path
				}
			}
		}
	}
	var out []ContainerSpec
	for i, cv := range raw {
		cm, ok := cv.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("spec: container %d is not a mapping", i)
		}
		image, _ := cm["image"].(string)
		if image == "" {
			return nil, fmt.Errorf("%w (container %d)", ErrNoImage, i)
		}
		cs := ContainerSpec{Image: image}
		if n, ok := cm["name"].(string); ok && n != "" {
			cs.Name = n
		} else {
			cs.Name = fmt.Sprintf("c%d", i)
		}
		if ports, ok := cm["ports"].([]any); ok && len(ports) > 0 {
			if pm, ok := ports[0].(map[string]any); ok {
				if cp, ok := pm["containerPort"].(int64); ok {
					cs.ContainerPort = int(cp)
				}
			}
		}
		if envs, ok := cm["env"].([]any); ok {
			cs.Env = map[string]string{}
			for _, ev := range envs {
				em, ok := ev.(map[string]any)
				if !ok {
					continue
				}
				name, _ := em["name"].(string)
				val := fmt.Sprint(em["value"])
				if name != "" {
					cs.Env[name] = val
				}
			}
		}
		if res, ok := cm["resources"].(map[string]any); ok {
			if reqs, ok := res["requests"].(map[string]any); ok {
				if cpu, err := ParseCPU(reqs["cpu"]); err != nil {
					return nil, fmt.Errorf("spec: container %d: %v", i, err)
				} else {
					cs.CPUMillis = cpu
				}
				if mem, err := ParseMemory(reqs["memory"]); err != nil {
					return nil, fmt.Errorf("spec: container %d: %v", i, err)
				} else {
					cs.MemoryBytes = mem
				}
			}
		}
		if mounts, ok := cm["volumeMounts"].([]any); ok {
			for _, mv := range mounts {
				mm, ok := mv.(map[string]any)
				if !ok {
					continue
				}
				m := Mount{}
				m.Name, _ = mm["name"].(string)
				m.ContainerPath, _ = mm["mountPath"].(string)
				m.HostPath = hostPaths[m.Name]
				cs.Mounts = append(cs.Mounts, m)
			}
		}
		out = append(out, cs)
	}
	return out, nil
}

// EncodeYAML renders the annotated deployment and service as a two-document
// YAML stream (what would be applied to a real cluster).
func (a *Annotated) EncodeYAML() string {
	return yaml.EncodeAll([]any{a.Deployment, a.Service})
}

// ParseCPU parses a Kubernetes CPU quantity ("500m", "2", 0.5) into
// millicores. nil yields 0.
func ParseCPU(v any) (int64, error) {
	switch t := v.(type) {
	case nil:
		return 0, nil
	case int64:
		return t * 1000, nil
	case float64:
		return int64(t * 1000), nil
	case string:
		s := strings.TrimSpace(t)
		if s == "" {
			return 0, nil
		}
		if strings.HasSuffix(s, "m") {
			n, err := strconv.ParseInt(strings.TrimSuffix(s, "m"), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("invalid cpu quantity %q", t)
			}
			return n, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid cpu quantity %q", t)
		}
		return int64(f * 1000), nil
	}
	return 0, fmt.Errorf("invalid cpu quantity %v", v)
}

// ParseMemory parses a Kubernetes memory quantity ("128Mi", "1Gi", "64M",
// plain bytes) into bytes. nil yields 0.
func ParseMemory(v any) (int64, error) {
	switch t := v.(type) {
	case nil:
		return 0, nil
	case int64:
		return t, nil
	case float64:
		return int64(t), nil
	case string:
		s := strings.TrimSpace(t)
		if s == "" {
			return 0, nil
		}
		units := []struct {
			suffix string
			mult   int64
		}{
			{"Gi", 1 << 30}, {"Mi", 1 << 20}, {"Ki", 1 << 10},
			{"G", 1_000_000_000}, {"M", 1_000_000}, {"K", 1_000},
		}
		for _, u := range units {
			if strings.HasSuffix(s, u.suffix) {
				n, err := strconv.ParseInt(strings.TrimSuffix(s, u.suffix), 10, 64)
				if err != nil {
					return 0, fmt.Errorf("invalid memory quantity %q", t)
				}
				return n * u.mult, nil
			}
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid memory quantity %q", t)
		}
		return n, nil
	}
	return 0, fmt.Errorf("invalid memory quantity %v", v)
}

func ensureMap(m map[string]any, key string) map[string]any {
	if v, ok := m[key].(map[string]any); ok {
		return v
	}
	v := map[string]any{}
	m[key] = v
	return v
}

func deepCopy(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, vv := range t {
			out[k] = deepCopy(vv)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, vv := range t {
			out[i] = deepCopy(vv)
		}
		return out
	default:
		return v
	}
}
