package spec

import (
	"errors"
	"strings"
	"testing"

	"transparentedge/internal/yaml"
)

const nginxYAML = `
apiVersion: apps/v1
kind: Deployment
spec:
  template:
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
`

const leanYAML = `
spec:
  template:
    spec:
      containers:
      - image: josefhammer/web-asm:amd64
`

const multiYAML = `
apiVersion: apps/v1
kind: Deployment
spec:
  template:
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
        volumeMounts:
        - name: shared
          mountPath: /usr/share/nginx/html
      - name: writer
        image: josefhammer/env-writer-py
        env:
        - name: INTERVAL
          value: 1
        volumeMounts:
        - name: shared
          mountPath: /data
      volumes:
      - name: shared
        hostPath:
          path: /srv/shared
---
apiVersion: v1
kind: Service
spec:
  ports:
  - port: 80
    targetPort: 8080
`

var reg = Registration{Domain: "web.example.com", VIP: "203.0.113.10", Port: 80}

func TestUniqueName(t *testing.T) {
	if got := reg.UniqueName(); got != "edge-web-example-com-80" {
		t.Fatalf("UniqueName = %q", got)
	}
	ipOnly := Registration{VIP: "203.0.113.10", Port: 443}
	if got := ipOnly.UniqueName(); got != "edge-203-0-113-10-443" {
		t.Fatalf("UniqueName = %q", got)
	}
}

func TestParseRequiresDeployment(t *testing.T) {
	_, err := Parse("kind: Service\n")
	if !errors.Is(err, ErrNoDeployment) {
		t.Fatalf("err = %v", err)
	}
}

func TestAnnotateSetsNameLabelsReplicas(t *testing.T) {
	def, err := Parse(nginxYAML)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Annotate(def, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.UniqueName != "edge-web-example-com-80" {
		t.Errorf("UniqueName = %q", a.UniqueName)
	}
	meta := a.Deployment["metadata"].(map[string]any)
	if meta["name"] != a.UniqueName {
		t.Errorf("metadata.name = %v", meta["name"])
	}
	labels := meta["labels"].(map[string]any)
	if labels[EdgeServiceLabel] != a.UniqueName || labels["app"] != a.UniqueName {
		t.Errorf("labels = %#v", labels)
	}
	spec := a.Deployment["spec"].(map[string]any)
	if spec["replicas"] != int64(0) {
		t.Errorf("replicas = %v, want 0 (scale to zero)", spec["replicas"])
	}
	match := spec["selector"].(map[string]any)["matchLabels"].(map[string]any)
	if match["app"] != a.UniqueName {
		t.Errorf("matchLabels = %#v", match)
	}
	tmplLabels := spec["template"].(map[string]any)["metadata"].(map[string]any)["labels"].(map[string]any)
	if tmplLabels[EdgeServiceLabel] != a.UniqueName {
		t.Errorf("template labels = %#v", tmplLabels)
	}
}

func TestAnnotateDoesNotMutateInput(t *testing.T) {
	def, _ := Parse(nginxYAML)
	before := yaml.Encode(def.Deployment)
	if _, err := Annotate(def, reg, Options{SchedulerName: "custom"}); err != nil {
		t.Fatal(err)
	}
	if yaml.Encode(def.Deployment) != before {
		t.Fatal("Annotate mutated the parsed definition")
	}
}

func TestAnnotateSchedulerName(t *testing.T) {
	def, _ := Parse(nginxYAML)
	a, _ := Annotate(def, reg, Options{SchedulerName: "matching-sched"})
	podSpec := a.Deployment["spec"].(map[string]any)["template"].(map[string]any)["spec"].(map[string]any)
	if podSpec["schedulerName"] != "matching-sched" {
		t.Fatalf("schedulerName = %v", podSpec["schedulerName"])
	}
	b, _ := Annotate(def, reg, Options{})
	podSpecB := b.Deployment["spec"].(map[string]any)["template"].(map[string]any)["spec"].(map[string]any)
	if _, present := podSpecB["schedulerName"]; present {
		t.Fatal("schedulerName set without a configured Local Scheduler")
	}
}

func TestAnnotateGeneratesService(t *testing.T) {
	def, _ := Parse(nginxYAML)
	a, _ := Annotate(def, reg, Options{})
	if a.Service == nil {
		t.Fatal("no Service generated")
	}
	sspec := a.Service["spec"].(map[string]any)
	ports := sspec["ports"].([]any)[0].(map[string]any)
	if ports["protocol"] != "TCP" || ports["port"] != int64(80) || ports["targetPort"] != int64(80) {
		t.Fatalf("ports = %#v", ports)
	}
	if sspec["selector"].(map[string]any)["app"] != a.UniqueName {
		t.Fatalf("selector = %#v", sspec["selector"])
	}
	if a.TargetPort != 80 {
		t.Fatalf("TargetPort = %d", a.TargetPort)
	}
}

func TestAnnotateKeepsDeveloperService(t *testing.T) {
	def, err := Parse(multiYAML)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Annotate(def, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sspec := a.Service["spec"].(map[string]any)
	ports := sspec["ports"].([]any)[0].(map[string]any)
	if ports["targetPort"] != int64(8080) {
		t.Fatalf("developer targetPort overridden: %#v", ports)
	}
	if a.TargetPort != 8080 {
		t.Fatalf("TargetPort = %d, want developer's 8080", a.TargetPort)
	}
}

func TestParseContainersMultiple(t *testing.T) {
	def, _ := Parse(multiYAML)
	a, err := Annotate(def, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Containers) != 2 {
		t.Fatalf("containers = %d, want 2", len(a.Containers))
	}
	nginx, writer := a.Containers[0], a.Containers[1]
	if nginx.Name != "nginx" || nginx.ContainerPort != 80 {
		t.Errorf("nginx = %+v", nginx)
	}
	if writer.Image != "josefhammer/env-writer-py" || writer.ContainerPort != 0 {
		t.Errorf("writer = %+v", writer)
	}
	if writer.Env["INTERVAL"] != "1" {
		t.Errorf("env = %#v", writer.Env)
	}
	if len(nginx.Mounts) != 1 || nginx.Mounts[0].HostPath != "/srv/shared" ||
		nginx.Mounts[0].ContainerPath != "/usr/share/nginx/html" {
		t.Errorf("mounts = %#v", nginx.Mounts)
	}
}

func TestLeanDefinitionOnlyImage(t *testing.T) {
	// The paper: "The only mandatory data is the name of the image."
	def, err := Parse(leanYAML)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Annotate(def, Registration{Domain: "asm.example.com", VIP: "203.0.113.11", Port: 80}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Containers) != 1 || a.Containers[0].Image != "josefhammer/web-asm:amd64" {
		t.Fatalf("containers = %#v", a.Containers)
	}
	if a.Containers[0].Name != "c0" {
		t.Errorf("default container name = %q", a.Containers[0].Name)
	}
	// No containerPort declared: Service targets the registered port.
	if a.TargetPort != 80 {
		t.Errorf("TargetPort = %d", a.TargetPort)
	}
}

func TestAnnotateErrors(t *testing.T) {
	def := &Definition{Deployment: map[string]any{"spec": map[string]any{
		"template": map[string]any{"spec": map[string]any{}},
	}}}
	if _, err := Annotate(def, reg, Options{}); !errors.Is(err, ErrNoContainers) {
		t.Fatalf("err = %v, want ErrNoContainers", err)
	}
	def2, _ := Parse("spec:\n  template:\n    spec:\n      containers:\n      - name: x\n")
	if _, err := Annotate(def2, reg, Options{}); !errors.Is(err, ErrNoImage) {
		t.Fatalf("err = %v, want ErrNoImage", err)
	}
}

func TestEncodeYAMLRoundTrips(t *testing.T) {
	def, _ := Parse(nginxYAML)
	a, _ := Annotate(def, reg, Options{})
	out := a.EncodeYAML()
	docs, err := yaml.DecodeAll(out)
	if err != nil {
		t.Fatalf("re-decode: %v\n%s", err, out)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %d, want 2", len(docs))
	}
	if !strings.Contains(out, "edge.service") {
		t.Error("encoded YAML missing edge.service label")
	}
}

func TestParseCPU(t *testing.T) {
	cases := []struct {
		in   any
		want int64
		err  bool
	}{
		{nil, 0, false},
		{"500m", 500, false},
		{"2", 2000, false},
		{0.5, 500, false},
		{int64(3), 3000, false},
		{"", 0, false},
		{"abc", 0, true},
		{[]any{}, 0, true},
	}
	for _, c := range cases {
		got, err := ParseCPU(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseCPU(%v) = %d, %v; want %d err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestParseMemory(t *testing.T) {
	cases := []struct {
		in   any
		want int64
		err  bool
	}{
		{nil, 0, false},
		{"128Mi", 128 << 20, false},
		{"1Gi", 1 << 30, false},
		{"2Ki", 2048, false},
		{"64M", 64_000_000, false},
		{"1G", 1_000_000_000, false},
		{"5K", 5_000, false},
		{"1024", 1024, false},
		{int64(77), 77, false},
		{"xMi", 0, true},
		{"many", 0, true},
	}
	for _, c := range cases {
		got, err := ParseMemory(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseMemory(%v) = %d, %v; want %d err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestAnnotateParsesResourceRequests(t *testing.T) {
	src := `
spec:
  template:
    spec:
      containers:
      - name: heavy
        image: heavy:1
        resources:
          requests:
            cpu: 1500m
            memory: 256Mi
`
	def, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Annotate(def, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := a.Containers[0]
	if cs.CPUMillis != 1500 || cs.MemoryBytes != 256<<20 {
		t.Fatalf("requests = %d / %d", cs.CPUMillis, cs.MemoryBytes)
	}
	// Invalid quantities surface as errors.
	bad := `
spec:
  template:
    spec:
      containers:
      - name: x
        image: x:1
        resources:
          requests:
            cpu: lots
`
	defBad, _ := Parse(bad)
	if _, err := Annotate(defBad, reg, Options{}); err == nil {
		t.Fatal("invalid cpu quantity accepted")
	}
}

func TestRuntimeClassParsed(t *testing.T) {
	src := `
spec:
  template:
    spec:
      runtimeClassName: wasm
      containers:
      - name: fn
        image: web:wasm
`
	def, _ := Parse(src)
	a, err := Annotate(def, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.RuntimeClass != "wasm" {
		t.Fatalf("RuntimeClass = %q", a.RuntimeClass)
	}
}
