package srsteer

import (
	"testing"
	"time"

	"transparentedge/internal/openflow"
	"transparentedge/internal/sim"
	"transparentedge/internal/simnet"
	"transparentedge/internal/steer"
)

type sinkNode struct {
	name string
	net  *simnet.Network
	got  int
	last simnet.Packet
}

func (s *sinkNode) Name() string { return s.name }
func (s *sinkNode) HandlePacket(in *simnet.Port, pkt *simnet.Packet) {
	s.got++
	s.last = *pkt
	s.net.FreePacket(pkt)
}

// TestAllocsSRv6Ingress pins the stateless steering hot path — two struct-key
// map probes, in-place encap/decap, NORMAL forwarding — at zero steady-state
// allocations per packet, forward and reverse.
func TestAllocsSRv6Ingress(t *testing.T) {
	k := sim.New(1)
	n := simnet.NewNetwork(k)
	sw := openflow.NewSwitch(n, "sw", openflow.Config{FwdDelay: 20 * time.Microsecond})
	client := &sinkNode{name: "client", net: n}
	inst := &sinkNode{name: "inst", net: n}
	clientPort, swIn := n.Connect(client, sw, simnet.LinkConfig{Latency: time.Millisecond})
	swOut, instPort := n.Connect(sw, inst, simnet.LinkConfig{Latency: time.Millisecond})
	_ = instPort
	sw.AddPort(1, swIn)
	sw.AddPort(2, swOut)
	sw.SetRoute("10.0.0.2", 2)
	sw.SetRoute("10.1.0.1", 1)

	b := New()
	b.Bind(steer.Params{Kernel: k}) // no idle timeout: the pin isolates the datapath
	b.AttachSwitch(sw)
	f := steer.Flow{Client: "10.1.0.1", VIP: "203.0.113.99", Port: 80}
	b.InstallRedirect(sw, f, steer.Endpoint{Addr: "10.0.0.2", Port: 32000})

	sendFwd := func() {
		pkt := n.NewPacket()
		pkt.Kind, pkt.SrcIP, pkt.DstIP = simnet.KindDATA, "10.1.0.1", "203.0.113.99"
		pkt.SrcPort, pkt.DstPort, pkt.Size = 40000, 80, simnet.KiB
		clientPort.Send(pkt)
		k.Run()
	}
	sendRev := func() {
		pkt := n.NewPacket()
		pkt.Kind, pkt.SrcIP, pkt.DstIP = simnet.KindDATA, "10.0.0.2", "10.1.0.1"
		pkt.SrcPort, pkt.DstPort, pkt.Size = 32000, 40000, simnet.KiB
		instPort.Send(pkt)
		k.Run()
	}
	for i := 0; i < 10; i++ {
		sendFwd()
		sendRev()
	}
	if inst.last.DstIP != "10.0.0.2" || inst.last.DstPort != 32000 ||
		!inst.last.Encap || inst.last.InnerDstIP != "203.0.113.99" || inst.last.InnerDstPort != 80 {
		t.Fatalf("forward encap wrong: %+v", inst.last)
	}
	if client.last.SrcIP != "203.0.113.99" || client.last.SrcPort != 80 || client.last.Encap {
		t.Fatalf("reverse decap wrong: %+v", client.last)
	}

	before := inst.got + client.got
	if avg := testing.AllocsPerRun(200, sendFwd); avg != 0 {
		t.Errorf("%.1f allocs per forward encap, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, sendRev); avg != 0 {
		t.Errorf("%.1f allocs per reverse decap, want 0", avg)
	}
	if inst.got+client.got-before != 402 {
		t.Fatalf("delivered %d, want 402 (encap or decap path broken)", inst.got+client.got-before)
	}
}
