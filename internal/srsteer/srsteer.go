// Package srsteer is the stateless steering backend (steer.Steering): an
// SRv6-style mechanism in the spirit of Royer et al., "Using SRv6 to access
// Edge Applications in 5G Networks". Instead of installing per-flow rewrite
// rules on the switch, the controller keeps the client→instance binding
// itself (next to the FlowMemory, where it already lives) and returns a
// segment-list-style encapsulation decision to the ingress point: packets
// entering the switch are encapsulated in place — the original service
// address is preserved as the inner destination while the outer destination
// carries the encoded segment endpoint — and forwarded on the normal routed
// path. Intermediate switches forward on the encoded path with zero per-flow
// state; no flow-mod ever crosses the control channel for a client flow, so
// rule-table occupancy and flow-mod traffic stay O(1) in the client count.
//
// The binding table is controller state, bounded exactly like the cookie map
// it replaces: bindings idle-expire on the virtual clock and notify the
// controller (steer.Params.OnExpired) so client-location records are
// garbage-collected the same way an openflow flow-removed message would.
package srsteer

import (
	"transparentedge/internal/obs"
	"transparentedge/internal/openflow"
	"transparentedge/internal/sim"
	"transparentedge/internal/simnet"
	"transparentedge/internal/steer"
)

// fwdKey mirrors the forward rewrite rule's match: client source, service
// VIP and port, with the client's source port wildcarded.
type fwdKey struct {
	client simnet.Addr
	vip    simnet.Addr
	port   int
}

// revKey mirrors the reverse rewrite rule's match: instance source address
// and port toward a specific client, destination port wildcarded.
type revKey struct {
	instAddr simnet.Addr
	instPort int
	client   simnet.Addr
}

// binding is one controller-side steering decision.
type binding struct {
	f        steer.Flow
	ep       steer.Endpoint
	cloud    bool // forward unmodified toward the cloud (no encap)
	lastUsed sim.Time
	removed  bool
}

// SRv6 implements steer.Steering with zero per-flow switch state.
type SRv6 struct {
	p       steer.Params
	k       *sim.Kernel
	fwd     map[fwdKey]*binding
	rev     map[revKey]*binding
	high    int
	ingress func(sw *openflow.Switch, inPort int, pkt *simnet.Packet) bool

	// Obs handles (nil without Params.Counters; nil handles no-op).
	gEntries         *obs.Gauge
	cEncaps, cDecaps *obs.Counter
}

// New creates the stateless backend. All wiring arrives via Bind.
func New() *SRv6 {
	b := &SRv6{
		fwd: make(map[fwdKey]*binding),
		rev: make(map[revKey]*binding),
	}
	// The hook closure is built once so AttachSwitch allocates nothing per
	// switch and every switch shares one binding table.
	b.ingress = b.steerPacket
	return b
}

// Name implements steer.Steering.
func (b *SRv6) Name() string { return "srv6" }

// Stateless implements steer.Steering: every attached switch shares the one
// binding table, so a decision is valid wherever the client shows up next —
// a handover needs no packet-in and no install at the new switch.
func (b *SRv6) Stateless() bool { return true }

// Bind implements steer.Steering.
func (b *SRv6) Bind(p steer.Params) {
	b.p = p
	b.k = p.Kernel
	if reg := p.Counters; reg != nil {
		b.gEntries = reg.Gauge("steer_entries")
		b.cEncaps = reg.Counter("steer_encap_total")
		b.cDecaps = reg.Counter("steer_decap_total")
	}
}

// AttachSwitch implements steer.Steering: the ingress hook is the entire
// per-switch footprint.
func (b *SRv6) AttachSwitch(sw *openflow.Switch) {
	sw.SetIngressSteer(b.ingress)
}

// steerPacket is the per-packet ingress hook: one map probe per direction,
// in-place encap/decap, normal forwarding. Zero allocations steady-state —
// pinned by TestAllocsSRv6Ingress.
func (b *SRv6) steerPacket(sw *openflow.Switch, inPort int, pkt *simnet.Packet) bool {
	if e, ok := b.fwd[fwdKey{pkt.SrcIP, pkt.DstIP, pkt.DstPort}]; ok && !e.removed {
		e.lastUsed = b.k.Now()
		if e.cloud {
			// Cloud-forwarded flow: pass through unmodified (the openflow
			// backend's pass-through rule), suppressing further packet-ins.
			sw.ForwardNormal(pkt)
			return true
		}
		// SRv6-style encap in place: the service address becomes the inner
		// destination, the outer destination is the segment endpoint.
		b.cEncaps.Inc()
		pkt.Encap = true
		pkt.InnerDstIP = pkt.DstIP
		pkt.InnerDstPort = pkt.DstPort
		pkt.DstIP = e.ep.Addr
		pkt.DstPort = e.ep.Port
		sw.ForwardNormal(pkt)
		return true
	}
	if e, ok := b.rev[revKey{pkt.SrcIP, pkt.SrcPort, pkt.DstIP}]; ok && !e.removed {
		e.lastUsed = b.k.Now()
		// Decap of the return direction: the client must see the service
		// address it dialed.
		b.cDecaps.Inc()
		pkt.Encap = false
		pkt.InnerDstIP = ""
		pkt.InnerDstPort = 0
		pkt.SrcIP = e.f.VIP
		pkt.SrcPort = e.f.Port
		sw.ForwardNormal(pkt)
		return true
	}
	return false // fall through to the table (punt rule → dispatch)
}

// install replaces any binding for f with a fresh one.
func (b *SRv6) install(f steer.Flow, ep steer.Endpoint, cloud bool) {
	fk := fwdKey{f.Client, f.VIP, f.Port}
	if old, ok := b.fwd[fk]; ok {
		b.drop(old)
	}
	e := &binding{f: f, ep: ep, cloud: cloud, lastUsed: b.k.Now()}
	b.fwd[fk] = e
	if !cloud {
		b.rev[revKey{ep.Addr, ep.Port, f.Client}] = e
	}
	if len(b.fwd) > b.high {
		b.high = len(b.fwd)
	}
	b.gEntries.Set(int64(len(b.fwd)))
	if b.p.IdleTimeout > 0 {
		b.scheduleIdle(e)
	}
}

// drop removes a binding from both maps (only if it is still the current
// entry for its keys).
func (b *SRv6) drop(e *binding) {
	e.removed = true
	fk := fwdKey{e.f.Client, e.f.VIP, e.f.Port}
	if cur, ok := b.fwd[fk]; ok && cur == e {
		delete(b.fwd, fk)
	}
	if !e.cloud {
		rk := revKey{e.ep.Addr, e.ep.Port, e.f.Client}
		if cur, ok := b.rev[rk]; ok && cur == e {
			delete(b.rev, rk)
		}
	}
	b.gEntries.Set(int64(len(b.fwd)))
}

// scheduleIdle re-checks a binding at its next possible expiry, mirroring
// the switch rule idle-timeout logic so both backends bound their per-flow
// state by the same window.
func (b *SRv6) scheduleIdle(e *binding) {
	due := e.lastUsed + b.p.IdleTimeout
	b.k.At(due, func() {
		if e.removed {
			return
		}
		if b.k.Now()-e.lastUsed >= b.p.IdleTimeout {
			b.drop(e)
			if b.p.OnExpired != nil {
				b.p.OnExpired(e.f)
			}
			return
		}
		b.scheduleIdle(e)
	})
}

// InstallRedirect implements steer.Steering.
func (b *SRv6) InstallRedirect(sw *openflow.Switch, f steer.Flow, ep steer.Endpoint) {
	b.install(f, ep, false)
}

// InstallCloudForward implements steer.Steering.
func (b *SRv6) InstallCloudForward(sw *openflow.Switch, f steer.Flow) {
	b.install(f, steer.Endpoint{}, true)
}

// ReAnchor implements steer.Steering: bindings are switch-agnostic (every
// attached switch shares the table), so a handover is just a refresh — the
// stateless backend's whole point. No switch state exists to move.
func (b *SRv6) ReAnchor(oldSw, newSw *openflow.Switch, f steer.Flow, ep steer.Endpoint) {
	b.install(f, ep, false)
}

// FlowRemoved implements steer.Steering. The backend installs no rules, so
// no notification can concern it.
func (b *SRv6) FlowRemoved(sw *openflow.Switch, rule *openflow.FlowRule) (steer.Flow, bool) {
	return steer.Flow{}, false
}

// Entries implements steer.Steering.
func (b *SRv6) Entries() int { return len(b.fwd) }

// Stats implements steer.Steering: zero flow-mods, zero switch rules — the
// headline numbers of the comparison.
func (b *SRv6) Stats() steer.TableStats {
	return steer.TableStats{
		Entries:          len(b.fwd),
		EntriesHighWater: b.high,
		FlowMods:         0,
		SwitchRules:      0,
	}
}
