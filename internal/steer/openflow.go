package steer

import (
	"transparentedge/internal/obs"
	"transparentedge/internal/openflow"
)

// controllerCookieBase keeps controller-assigned flow cookies disjoint from
// the switch's auto-assigned cookie space, so deleting a client's redirect
// pair can never remove a punt rule.
const controllerCookieBase uint64 = 1 << 32

// pairKey identifies one installed redirect/cloud-forward pair.
type pairKey struct {
	sw *openflow.Switch
	f  Flow
}

// pairState tracks which halves of a pair are still installed in the switch
// table. The two rules of a redirect pair expire independently (the forward
// rule idles out when the client goes quiet, the reverse keeps matching as
// long as response traffic flows), so after a forward-only expiry the pair
// survives as a *remnant*: release() must still be able to delete the
// surviving reverse rule on a handover instead of orphaning it in the old
// switch's table.
type pairState struct {
	cookie  uint64
	forward bool // forward / cloud-forward rule installed
	reverse bool // reverse rewrite rule installed (false for cloud pairs)
}

// OpenFlow is the paper's steering mechanism: per-flow forward and reverse
// rewrite rules installed on the switch (fig. 2), identified by a
// controller-assigned cookie per client/service/switch triple. It is the
// default backend and preserves the pre-interface controller behavior:
// same rule shapes, same install/delete order, same cookie sequence.
type OpenFlow struct {
	p        Params
	pairs    map[pairKey]*pairState
	byCookie map[uint64]pairKey
	seq      uint64
	switches []*openflow.Switch
	live     int // pairs whose forward half is installed (the Entries count)
	high     int
	flowMods uint64

	// Obs handles (nil without Params.Counters; nil handles no-op).
	gEntries *obs.Gauge
	cMods    *obs.Counter
}

// NewOpenFlow creates the rule-install backend. All wiring arrives later
// via Bind.
func NewOpenFlow() *OpenFlow {
	return &OpenFlow{
		pairs:    make(map[pairKey]*pairState),
		byCookie: make(map[uint64]pairKey),
	}
}

// Name implements Steering.
func (b *OpenFlow) Name() string { return "openflow" }

// Stateless implements Steering: rule installs are per-switch state.
func (b *OpenFlow) Stateless() bool { return false }

// Bind implements Steering.
func (b *OpenFlow) Bind(p Params) {
	b.p = p
	if reg := p.Counters; reg != nil {
		b.gEntries = reg.Gauge("steer_entries")
		b.cMods = reg.Counter("steer_flow_mods_total")
	}
}

// AttachSwitch implements Steering: rule installs need no per-switch setup;
// the switch list only feeds the Stats snapshot.
func (b *OpenFlow) AttachSwitch(sw *openflow.Switch) {
	b.switches = append(b.switches, sw)
}

func (b *OpenFlow) nextCookie() uint64 {
	b.seq++
	return controllerCookieBase + b.seq
}

// release deletes whatever remains of the pair previously installed for
// key, if anything. One DeleteFlows covers both rules (shared cookie), and
// exactly one flow-mod is counted per released pair — releasing a remnant
// whose forward rule already idle-expired issues the delete for the
// surviving reverse rule without double-releasing the cookie or skewing
// the live-entry accounting.
func (b *OpenFlow) release(key pairKey) {
	st, ok := b.pairs[key]
	if !ok {
		return
	}
	key.sw.DeleteFlows(st.cookie)
	if st.forward {
		b.live--
	}
	delete(b.pairs, key)
	delete(b.byCookie, st.cookie)
	b.flowMods++
	b.cMods.Inc()
	b.gEntries.Set(int64(b.live))
}

func (b *OpenFlow) track(key pairKey, cookie uint64, mods uint64, reverse bool) {
	b.pairs[key] = &pairState{cookie: cookie, forward: true, reverse: reverse}
	b.byCookie[cookie] = key
	b.live++
	if b.live > b.high {
		b.high = b.live
	}
	b.flowMods += mods
	b.cMods.Add(mods)
	b.gEntries.Set(int64(b.live))
}

// InstallRedirect implements Steering: the forward and reverse rewrite rules
// for one client/service pair, replacing any previous pair for the key. The
// forward rule requests a flow-removed notification so the cookie and
// client-location bookkeeping is garbage-collected on idle expiry.
func (b *OpenFlow) InstallRedirect(sw *openflow.Switch, f Flow, ep Endpoint) {
	key := pairKey{sw, f}
	b.release(key)
	cookie := b.nextCookie()
	sw.AddFlow(openflow.FlowRule{
		Priority: b.p.FlowPriority,
		Cookie:   cookie,
		Match:    openflow.Match{SrcIP: f.Client, DstIP: f.VIP, DstPort: f.Port},
		Actions: openflow.Actions{
			SetDstIP:   ep.Addr,
			SetDstPort: ep.Port,
			Output:     openflow.OutputNormal,
		},
		IdleTimeout:   b.p.IdleTimeout,
		NotifyRemoved: true,
	})
	sw.AddFlow(openflow.FlowRule{
		Priority: b.p.FlowPriority,
		Cookie:   cookie,
		Match:    openflow.Match{SrcIP: ep.Addr, SrcPort: ep.Port, DstIP: f.Client},
		Actions: openflow.Actions{
			SetSrcIP:   f.VIP,
			SetSrcPort: f.Port,
			Output:     openflow.OutputNormal,
		},
		IdleTimeout: b.p.IdleTimeout,
		// The reverse rule notifies too, so a remnant pair (forward expired
		// first, see pairState) is dropped from tracking once its reverse
		// half also leaves the table — the map stays bounded by live rules.
		NotifyRemoved: true,
	})
	b.track(key, cookie, 2, true)
}

// InstallCloudForward implements Steering: a pass-through flow so the
// conversation continues to the real cloud without further packet-ins.
func (b *OpenFlow) InstallCloudForward(sw *openflow.Switch, f Flow) {
	key := pairKey{sw, f}
	b.release(key)
	cookie := b.nextCookie()
	sw.AddFlow(openflow.FlowRule{
		Priority:      b.p.FlowPriority,
		Cookie:        cookie,
		Match:         openflow.Match{SrcIP: f.Client, DstIP: f.VIP, DstPort: f.Port},
		Actions:       openflow.Actions{Output: openflow.OutputNormal},
		IdleTimeout:   b.p.IdleTimeout,
		NotifyRemoved: true,
	})
	b.track(key, cookie, 1, false)
}

// ReAnchor implements Steering: handover. The old attachment point's pair is
// deleted eagerly (it can never match again — the client's packets now enter
// at newSw) and a fresh pair is installed where the client actually is. When
// the old pair already idle-expired in full, release is a no-op: the cookie
// is not double-released and no phantom flow-mod is counted.
func (b *OpenFlow) ReAnchor(oldSw, newSw *openflow.Switch, f Flow, ep Endpoint) {
	b.release(pairKey{oldSw, f})
	b.InstallRedirect(newSw, f, ep)
}

// FlowRemoved implements Steering: a rule idle-expired on sw. A forward
// rule's expiry ends the pair's live entry (and reports the flow so the
// controller can GC client state); if the pair's reverse rule is still
// installed, the pair is kept as a remnant so a later release can delete
// it. A reverse rule's expiry (recognized by its endpoint-keyed match —
// SrcPort set) only trims that remnant bookkeeping.
func (b *OpenFlow) FlowRemoved(sw *openflow.Switch, rule *openflow.FlowRule) (Flow, bool) {
	if rule.Match.SrcPort != 0 {
		if key, ok := b.byCookie[rule.Cookie]; ok {
			if st := b.pairs[key]; st != nil && st.cookie == rule.Cookie {
				st.reverse = false
				if !st.forward {
					delete(b.pairs, key)
					delete(b.byCookie, rule.Cookie)
				}
			}
		}
		return Flow{}, false
	}
	f := Flow{Client: rule.Match.SrcIP, VIP: rule.Match.DstIP, Port: rule.Match.DstPort}
	key := pairKey{sw, f}
	if st, ok := b.pairs[key]; ok && st.cookie == rule.Cookie {
		st.forward = false
		b.live--
		b.gEntries.Set(int64(b.live))
		if !st.reverse {
			delete(b.pairs, key)
			delete(b.byCookie, rule.Cookie)
		}
	}
	return f, true
}

// Entries implements Steering.
func (b *OpenFlow) Entries() int { return b.live }

// Stats implements Steering. SwitchRules is the summed live table size of
// every attached switch (punt rules included — they are part of the
// table-pressure the backend imposes).
func (b *OpenFlow) Stats() TableStats {
	rules := 0
	for _, sw := range b.switches {
		rules += sw.RuleCount()
	}
	return TableStats{
		Entries:          b.live,
		EntriesHighWater: b.high,
		FlowMods:         b.flowMods,
		SwitchRules:      rules,
	}
}
