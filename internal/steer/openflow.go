package steer

import (
	"transparentedge/internal/obs"
	"transparentedge/internal/openflow"
)

// controllerCookieBase keeps controller-assigned flow cookies disjoint from
// the switch's auto-assigned cookie space, so deleting a client's redirect
// pair can never remove a punt rule.
const controllerCookieBase uint64 = 1 << 32

// pairKey identifies one installed redirect/cloud-forward pair.
type pairKey struct {
	sw *openflow.Switch
	f  Flow
}

// OpenFlow is the paper's steering mechanism: per-flow forward and reverse
// rewrite rules installed on the switch (fig. 2), identified by a
// controller-assigned cookie per client/service/switch triple. It is the
// default backend and preserves the pre-interface controller behavior
// bit-for-bit: same rule shapes, same install/delete order, same cookie
// sequence.
type OpenFlow struct {
	p        Params
	cookies  map[pairKey]uint64
	seq      uint64
	switches []*openflow.Switch
	high     int
	flowMods uint64

	// Obs handles (nil without Params.Counters; nil handles no-op).
	gEntries *obs.Gauge
	cMods    *obs.Counter
}

// NewOpenFlow creates the rule-install backend. All wiring arrives later
// via Bind.
func NewOpenFlow() *OpenFlow {
	return &OpenFlow{cookies: make(map[pairKey]uint64)}
}

// Name implements Steering.
func (b *OpenFlow) Name() string { return "openflow" }

// Bind implements Steering.
func (b *OpenFlow) Bind(p Params) {
	b.p = p
	if reg := p.Counters; reg != nil {
		b.gEntries = reg.Gauge("steer_entries")
		b.cMods = reg.Counter("steer_flow_mods_total")
	}
}

// AttachSwitch implements Steering: rule installs need no per-switch setup;
// the switch list only feeds the Stats snapshot.
func (b *OpenFlow) AttachSwitch(sw *openflow.Switch) {
	b.switches = append(b.switches, sw)
}

func (b *OpenFlow) nextCookie() uint64 {
	b.seq++
	return controllerCookieBase + b.seq
}

// release deletes the pair previously installed for key, if any.
func (b *OpenFlow) release(key pairKey) {
	if old, ok := b.cookies[key]; ok {
		key.sw.DeleteFlows(old)
		delete(b.cookies, key)
		b.flowMods++
		b.cMods.Inc()
	}
}

func (b *OpenFlow) track(key pairKey, cookie uint64, mods uint64) {
	b.cookies[key] = cookie
	if len(b.cookies) > b.high {
		b.high = len(b.cookies)
	}
	b.flowMods += mods
	b.cMods.Add(mods)
	b.gEntries.Set(int64(len(b.cookies)))
}

// InstallRedirect implements Steering: the forward and reverse rewrite rules
// for one client/service pair, replacing any previous pair for the key. The
// forward rule requests a flow-removed notification so the cookie and
// client-location bookkeeping is garbage-collected on idle expiry.
func (b *OpenFlow) InstallRedirect(sw *openflow.Switch, f Flow, ep Endpoint) {
	key := pairKey{sw, f}
	b.release(key)
	cookie := b.nextCookie()
	sw.AddFlow(openflow.FlowRule{
		Priority: b.p.FlowPriority,
		Cookie:   cookie,
		Match:    openflow.Match{SrcIP: f.Client, DstIP: f.VIP, DstPort: f.Port},
		Actions: openflow.Actions{
			SetDstIP:   ep.Addr,
			SetDstPort: ep.Port,
			Output:     openflow.OutputNormal,
		},
		IdleTimeout:   b.p.IdleTimeout,
		NotifyRemoved: true,
	})
	sw.AddFlow(openflow.FlowRule{
		Priority: b.p.FlowPriority,
		Cookie:   cookie,
		Match:    openflow.Match{SrcIP: ep.Addr, SrcPort: ep.Port, DstIP: f.Client},
		Actions: openflow.Actions{
			SetSrcIP:   f.VIP,
			SetSrcPort: f.Port,
			Output:     openflow.OutputNormal,
		},
		IdleTimeout: b.p.IdleTimeout,
	})
	b.track(key, cookie, 2)
}

// InstallCloudForward implements Steering: a pass-through flow so the
// conversation continues to the real cloud without further packet-ins.
func (b *OpenFlow) InstallCloudForward(sw *openflow.Switch, f Flow) {
	key := pairKey{sw, f}
	b.release(key)
	cookie := b.nextCookie()
	sw.AddFlow(openflow.FlowRule{
		Priority:      b.p.FlowPriority,
		Cookie:        cookie,
		Match:         openflow.Match{SrcIP: f.Client, DstIP: f.VIP, DstPort: f.Port},
		Actions:       openflow.Actions{Output: openflow.OutputNormal},
		IdleTimeout:   b.p.IdleTimeout,
		NotifyRemoved: true,
	})
	b.track(key, cookie, 1)
}

// ReAnchor implements Steering: handover. The old attachment point's pair is
// deleted eagerly (it can never match again — the client's packets now enter
// at newSw) and a fresh pair is installed where the client actually is.
func (b *OpenFlow) ReAnchor(oldSw, newSw *openflow.Switch, f Flow, ep Endpoint) {
	b.release(pairKey{oldSw, f})
	b.gEntries.Set(int64(len(b.cookies)))
	b.InstallRedirect(newSw, f, ep)
}

// FlowRemoved implements Steering: a forward rule idle-expired on sw; drop
// the pair's cookie tracking (the reverse rule expires on its own).
func (b *OpenFlow) FlowRemoved(sw *openflow.Switch, rule *openflow.FlowRule) (Flow, bool) {
	f := Flow{Client: rule.Match.SrcIP, VIP: rule.Match.DstIP, Port: rule.Match.DstPort}
	key := pairKey{sw, f}
	if cookie, ok := b.cookies[key]; ok && cookie == rule.Cookie {
		delete(b.cookies, key)
		b.gEntries.Set(int64(len(b.cookies)))
	}
	return f, true
}

// Entries implements Steering.
func (b *OpenFlow) Entries() int { return len(b.cookies) }

// Stats implements Steering. SwitchRules is the summed live table size of
// every attached switch (punt rules included — they are part of the
// table-pressure the backend imposes).
func (b *OpenFlow) Stats() TableStats {
	rules := 0
	for _, sw := range b.switches {
		rules += sw.RuleCount()
	}
	return TableStats{
		Entries:          len(b.cookies),
		EntriesHighWater: b.high,
		FlowMods:         b.flowMods,
		SwitchRules:      rules,
	}
}
