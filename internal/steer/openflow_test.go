package steer

import (
	"testing"
	"time"

	"transparentedge/internal/openflow"
	"transparentedge/internal/sim"
	"transparentedge/internal/simnet"
)

// notifyStub routes the switches' flow-removed notifications into the
// backend, standing in for core.Controller.HandleFlowRemoved.
type notifyStub struct{ b *OpenFlow }

func (s *notifyStub) HandlePacketIn(ev openflow.PacketIn) {}
func (s *notifyStub) HandleFlowRemoved(sw *openflow.Switch, rule *openflow.FlowRule) {
	s.b.FlowRemoved(sw, rule)
}

// steerRig builds two bare switches and a bound OpenFlow backend with the
// given idle timeout.
func steerRig(t *testing.T, idle time.Duration) (*sim.Kernel, *OpenFlow, *openflow.Switch, *openflow.Switch) {
	t.Helper()
	k := sim.New(1)
	n := simnet.NewNetwork(k)
	sw1 := openflow.NewSwitch(n, "sw1", openflow.DefaultConfig())
	sw2 := openflow.NewSwitch(n, "sw2", openflow.DefaultConfig())
	b := NewOpenFlow()
	b.Bind(Params{Kernel: k, FlowPriority: 100, IdleTimeout: idle})
	stub := &notifyStub{b: b}
	sw1.SetController(stub)
	sw2.SetController(stub)
	b.AttachSwitch(sw1)
	b.AttachSwitch(sw2)
	return k, b, sw1, sw2
}

var (
	testFlow = Flow{Client: simnet.Addr("10.0.1.1"), VIP: simnet.Addr("203.0.113.10"), Port: 80}
	testEP   = Endpoint{Addr: simnet.Addr("10.0.0.10"), Port: 32000}
)

// forwardRule returns the pair's installed forward rule (client-keyed match).
func forwardRule(t *testing.T, sw *openflow.Switch) *openflow.FlowRule {
	t.Helper()
	for _, r := range sw.Rules() {
		if r.Match.SrcIP == testFlow.Client && r.Match.SrcPort == 0 {
			return r
		}
	}
	t.Fatal("no forward rule installed")
	return nil
}

// TestReAnchorAfterForwardExpiry pins the remnant-pair handover: the
// client went quiet long enough for the forward rule to idle out (its
// flow-removed notification already consumed) while response traffic kept
// the reverse rule alive. A handover's ReAnchor must still delete that
// surviving reverse rule from the old switch — not orphan it — and must
// not double-count the release.
func TestReAnchorAfterForwardExpiry(t *testing.T) {
	_, b, sw1, sw2 := steerRig(t, time.Minute)
	b.InstallRedirect(sw1, testFlow, testEP)
	if got := b.Stats(); got.Entries != 1 || got.FlowMods != 2 {
		t.Fatalf("after install: %+v, want 1 entry / 2 flow-mods", got)
	}

	// The switch expires the forward rule and notifies; the reverse rule
	// survives on response traffic.
	b.FlowRemoved(sw1, forwardRule(t, sw1))
	if b.Entries() != 0 {
		t.Fatalf("entries after forward expiry = %d, want 0", b.Entries())
	}
	if len(b.pairs) != 1 {
		t.Fatalf("remnant pair not tracked: %d pairs", len(b.pairs))
	}

	b.ReAnchor(sw1, sw2, testFlow, testEP)
	// The old switch's surviving reverse rule must be gone.
	for _, r := range sw1.Rules() {
		if r.Priority == 100 && r.Match.DstIP == testFlow.Client {
			t.Errorf("reverse rule orphaned on old switch: %+v", r.Match)
		}
	}
	st := b.Stats()
	// 2 (install) + 1 (remnant release) + 2 (re-install) — no phantom mods.
	if st.FlowMods != 5 {
		t.Errorf("flow-mods = %d, want 5", st.FlowMods)
	}
	if st.Entries != 1 || st.EntriesHighWater != 1 {
		t.Errorf("entries = %d high = %d, want 1/1", st.Entries, st.EntriesHighWater)
	}
	if len(b.pairs) != 1 || len(b.byCookie) != 1 {
		t.Errorf("tracking maps = %d pairs / %d cookies, want 1/1", len(b.pairs), len(b.byCookie))
	}
	rules := 0
	for _, r := range sw2.Rules() {
		if r.Priority == 100 {
			rules++
		}
	}
	if rules != 2 {
		t.Errorf("new switch redirect rules = %d, want forward+reverse pair", rules)
	}
}

// TestReAnchorAfterFullExpiry drives the idle expiry through the real
// switch timers: both halves of the pair expire (both notify), then a
// handover arrives. ReAnchor's release must be a no-op — no
// double-released cookie, no phantom flow-mod, no live-count skew.
func TestReAnchorAfterFullExpiry(t *testing.T) {
	k, b, sw1, sw2 := steerRig(t, 50*time.Millisecond)
	b.InstallRedirect(sw1, testFlow, testEP)
	k.RunUntil(time.Second)
	if got := sw1.RuleCount(); got != 0 {
		t.Fatalf("rules after idle expiry = %d, want 0", got)
	}
	if b.Entries() != 0 || len(b.pairs) != 0 || len(b.byCookie) != 0 {
		t.Fatalf("backend state after full expiry: entries=%d pairs=%d cookies=%d, want all 0",
			b.Entries(), len(b.pairs), len(b.byCookie))
	}

	mods := sw1.FlowMods
	b.ReAnchor(sw1, sw2, testFlow, testEP)
	if sw1.FlowMods != mods {
		t.Errorf("release after full expiry sent %d flow-mods to old switch, want 0", sw1.FlowMods-mods)
	}
	st := b.Stats()
	// 2 (install) + 0 (release no-op) + 2 (re-install).
	if st.FlowMods != 4 {
		t.Errorf("flow-mods = %d, want 4", st.FlowMods)
	}
	if st.Entries != 1 || st.EntriesHighWater != 1 {
		t.Errorf("entries = %d high = %d, want 1/1", st.Entries, st.EntriesHighWater)
	}
}

// TestReverseNotificationDoesNotReportFlow pins the notification dispatch:
// a reverse rule's expiry is backend bookkeeping only — reporting it as a
// client flow would make the controller GC the wrong client's state (the
// reverse match's SrcIP is the *instance*, not a client).
func TestReverseNotificationDoesNotReportFlow(t *testing.T) {
	_, b, sw1, _ := steerRig(t, time.Minute)
	b.InstallRedirect(sw1, testFlow, testEP)
	var reverse *openflow.FlowRule
	for _, r := range sw1.Rules() {
		if r.Match.SrcPort != 0 {
			reverse = r
		}
	}
	if reverse == nil {
		t.Fatal("no reverse rule installed")
	}
	if _, ok := b.FlowRemoved(sw1, reverse); ok {
		t.Error("reverse-rule expiry reported as a client flow")
	}
	// The forward half still steers: the pair must stay live.
	if b.Entries() != 1 {
		t.Errorf("entries after reverse-only expiry = %d, want 1", b.Entries())
	}
	// The later forward expiry drops the whole pair from tracking.
	b.FlowRemoved(sw1, forwardRule(t, sw1))
	if len(b.pairs) != 0 || len(b.byCookie) != 0 {
		t.Errorf("tracking maps not drained: %d pairs / %d cookies", len(b.pairs), len(b.byCookie))
	}
}
