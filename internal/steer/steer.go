// Package steer abstracts how the controller's dispatch decisions reach the
// data plane. The paper's approach — per-flow forward/reverse rewrite rules
// installed on the edge switch (package openflow) — is one implementation;
// package srsteer provides a stateless SRv6-style alternative where the
// decision is encoded at the ingress point and no per-flow switch state
// exists at all. core.Controller talks only to this interface, so the two
// backends are interchangeable per testbed and comparable per experiment
// (see DESIGN.md §14).
package steer

import (
	"time"

	"transparentedge/internal/obs"
	"transparentedge/internal/openflow"
	"transparentedge/internal/sim"
	"transparentedge/internal/simnet"
)

// Flow identifies one client→service flow the controller steers: the tuple
// the paper's forward rewrite rule matches on (client source, service VIP
// and port; the client's source port is deliberately wildcarded so one
// decision covers every connection of the client to the service).
type Flow struct {
	Client simnet.Addr
	VIP    simnet.Addr
	Port   int
}

// Endpoint is the instance a flow is steered to.
type Endpoint struct {
	Addr simnet.Addr
	Port int
}

// Params is the controller-side wiring a backend receives once, at
// Controller construction (Bind). Backends created externally (testbed
// options, experiments) therefore never need to know controller config.
type Params struct {
	// Kernel is the virtual clock (binding idle expiry, deferred work).
	Kernel *sim.Kernel
	// FlowPriority is the priority of installed redirect rules (rule-based
	// backends only; must outrank the controller's punt rules).
	FlowPriority int
	// IdleTimeout bounds how long an unused per-flow steering decision
	// (switch rule pair or controller-side binding) survives.
	IdleTimeout time.Duration
	// OnExpired, when set, is invoked (kernel context) when a flow's
	// steering state idle-expires without an openflow flow-removed
	// notification — the stateless backend's GC signal to the controller.
	OnExpired func(f Flow)
	// Counters, when non-nil, lets the backend register its obs handles
	// (steer_flow_mods_total, steer_entries gauge). Nil keeps the backend's
	// hot path handle-free and allocation-free.
	Counters *obs.Registry
}

// TableStats summarizes a backend's data-plane footprint — the quantities
// the SteerSweep experiment compares across backends.
type TableStats struct {
	// Entries is the current number of tracked per-flow steering decisions
	// (openflow: installed redirect/cloud-forward pairs; srsteer:
	// controller-side bindings).
	Entries int
	// EntriesHighWater is the peak of Entries over the run.
	EntriesHighWater int
	// FlowMods counts flow-mod messages the backend sent to switches
	// (add + delete). Zero for the stateless backend — its decisions never
	// touch a switch table.
	FlowMods uint64
	// SwitchRules counts rules the backend currently accounts to switch
	// tables (2 per redirect, 1 per cloud forward; 0 for srsteer).
	SwitchRules int
}

// Steering is the pluggable dispatch-to-dataplane mechanism. All methods run
// in kernel (event) context and must not block; install/uninstall take
// effect immediately, mirroring the synchronous AddFlow model (the held
// packet's TableOut re-injection pays the controller latency either way).
type Steering interface {
	// Name identifies the backend ("openflow", "srv6").
	Name() string
	// Stateless reports whether steering decisions are valid at every
	// attached switch without per-switch installs (srsteer's shared binding
	// table, consulted by each ingress hook). The controller uses this on
	// handover: a stateless backend needs no packet-in at the new switch —
	// re-anchoring is a pure binding refresh and the continuity gap is zero.
	Stateless() bool
	// Bind wires the backend to the controller (called once from core.New).
	Bind(p Params)
	// AttachSwitch is called for every switch the controller manages; the
	// stateless backend uses it to install its ingress hook.
	AttachSwitch(sw *openflow.Switch)
	// InstallRedirect steers f to ep at sw, replacing any previous decision
	// for the same flow at that switch (fig. 2's forward+reverse pair, or
	// an ingress encapsulation binding).
	InstallRedirect(sw *openflow.Switch, f Flow, ep Endpoint)
	// InstallCloudForward makes f bypass further packet-ins and flow toward
	// the cloud unmodified.
	InstallCloudForward(sw *openflow.Switch, f Flow)
	// ReAnchor moves f's steering from the client's previous attachment
	// point to its new one (handover): the old switch's state is released
	// eagerly instead of waiting out its idle timeout.
	ReAnchor(oldSw, newSw *openflow.Switch, f Flow, ep Endpoint)
	// FlowRemoved consumes an openflow flow-removed notification,
	// releasing backend bookkeeping. It returns the flow the rule steered
	// so the controller can GC its own per-client state.
	FlowRemoved(sw *openflow.Switch, rule *openflow.FlowRule) (Flow, bool)
	// Entries returns TableStats().Entries without building the struct
	// (dispatch-hot-path friendly).
	Entries() int
	// Stats snapshots the backend's data-plane footprint.
	Stats() TableStats
}
