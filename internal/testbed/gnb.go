package testbed

import (
	"fmt"
	"time"

	"transparentedge/internal/core"
	"transparentedge/internal/openflow"
	"transparentedge/internal/simnet"
)

// gNB topology constants. With Options.GNBs > 0, clients sit behind gNB
// access switches instead of directly on the site switch: each gNB carries
// the punt rules and steering installs (the client's attachment point), and
// the site switch degrades to a transit switch between the gNBs and the
// uplinks. Port numbering: on a gNB, port 1 is the x-haul toward the site
// switch and clients occupy 100+; on the site switch, gNB g hangs off port
// gnbSitePortBase+g (clear of the EGS/cloud/registry/far-edge ports).
const (
	gnbUplinkPort    = 1
	gnbSitePortBase  = 10
	xhaulLinkLatency = 300 * time.Microsecond
	xhaulLinkWidth   = 10 * simnet.Gbps
)

// buildGNBs inserts n access switches between the site switch and its
// future clients: the site switch is re-registered as a transit switch (no
// punt rules — a cloud-bound flow must not re-punt mid-path) and each gNB
// becomes a punting, steering-capable controller switch.
func buildGNBs(ctrl *core.Controller, net *simnet.Network, site *openflow.Switch, n int, namePrefix string) []*openflow.Switch {
	ctrl.AddTransitSwitch(site)
	gnbs := make([]*openflow.Switch, n)
	for g := 0; g < n; g++ {
		gnb := openflow.NewSwitch(net, fmt.Sprintf("%sgnb-%d", namePrefix, g), openflow.DefaultConfig())
		up, down := net.Connect(gnb, site, simnet.LinkConfig{
			Name:      fmt.Sprintf("%sgnb-%d/xhaul", namePrefix, g),
			Latency:   xhaulLinkLatency,
			Bandwidth: xhaulLinkWidth,
		})
		gnb.AddPort(gnbUplinkPort, up)
		gnb.SetDefaultRoute(gnbUplinkPort)
		site.AddPort(gnbSitePortBase+g, down)
		ctrl.AddSwitch(gnb)
		gnbs[g] = gnb
	}
	return gnbs
}

// attachClientGNB attaches a client to its initial cell (idx % len(gnbs),
// the workload generator's StartCell convention) under a stable port number
// and routes the site switch toward that gNB. Returns the cell index.
func attachClientGNB(gnbs []*openflow.Switch, site *openflow.Switch, cli *simnet.Host, idx, port int) int {
	g := idx % len(gnbs)
	gnbs[g].AttachHost(cli, port, simnet.LinkConfig{
		Name: cli.Name(), Latency: rpiLinkLatency, Bandwidth: rpiLinkBandwidth,
	})
	site.SetRoute(cli.IP(), gnbSitePortBase+g)
	return g
}

// moveClientGNB performs one handover: sever the old radio link (in-flight
// packets on it drop at their own events — see simnet.Host.Detach), rewire
// both switches' routes, and notify the controller so steering state
// follows the client. The client keeps its port number on every gNB (only
// it ever uses that number), so ping-pong handovers can reuse it freely.
func moveClientGNB(ctrl *core.Controller, gnbs []*openflow.Switch, site *openflow.Switch,
	cli *simnet.Host, port, from, to int) {
	gnbs[from].DetachPort(port)
	_, np := cli.MoveTo(gnbs[to], simnet.LinkConfig{
		Name: cli.Name(), Latency: rpiLinkLatency, Bandwidth: rpiLinkBandwidth,
	})
	gnbs[to].AddPort(port, np)
	gnbs[to].SetRoute(cli.IP(), port)
	site.SetRoute(cli.IP(), gnbSitePortBase+to)
	ctrl.NoteHandover(cli.IP(), gnbs[to], port)
}
