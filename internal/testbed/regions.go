package testbed

import (
	"fmt"
	"time"

	"transparentedge/internal/catalog"
	"transparentedge/internal/cluster"
	"transparentedge/internal/container"
	"transparentedge/internal/core"
	"transparentedge/internal/docker"
	"transparentedge/internal/faults"
	"transparentedge/internal/obs"
	"transparentedge/internal/openflow"
	"transparentedge/internal/registry"
	"transparentedge/internal/sim"
	"transparentedge/internal/simnet"
	"transparentedge/internal/spec"
)

// DefaultRegions is the number of edge sites in the sharded scenario. The
// domain topology is fixed by the scenario, never by the shard count — that
// is what makes results bit-identical at every -shards value.
const DefaultRegions = 8

// regionUplinkLatency is the one-way latency of each edge site's backbone
// uplink — the minimum inter-domain link latency, and therefore the shard
// group's conservative lookahead. It matches the single-testbed cloud
// uplink calibration.
const regionUplinkLatency = cloudUplinkLatency

// RegionOptions configures a sharded multi-region scenario.
type RegionOptions struct {
	Seed int64
	// Regions is the number of edge sites (default DefaultRegions). Each
	// site is one shard domain; the cloud backbone is one more.
	Regions int
	// Shards is the number of kernels the domains are partitioned onto
	// (default 1, the serial degenerate case). Clamped to Regions+1.
	Shards int
	// ClientsPerRegion is the number of RPi clients per site (default 20).
	ClientsPerRegion int
	// Traced / Counted enable per-region obs handles (one tracer/registry
	// per site, merged deterministically by the caller in region order).
	Traced  bool
	Counted bool
	// Faults, when non-nil and enabled, builds one deterministic fault
	// plan per region (injector decisions key on the per-region cluster
	// names, so sites fail independently but reproducibly) and impairs
	// every network when link faults are configured.
	Faults *faults.Spec
	// SteerBackend selects each region's steering backend by name (see
	// NewSteering); every region gets its own fresh backend instance.
	SteerBackend string
	// GNBs inserts that many gNB access switches per region between the
	// site's clients and its switch (Options.GNBs, tiled): handovers are
	// strictly intra-region, so the topology change never crosses a shard
	// boundary. 0 keeps the flat per-region topology.
	GNBs int
}

// Region is one edge site: its own network, switch, EGS, controller,
// Docker cluster, and clients — all living on the region's shard domain.
type Region struct {
	Domain  int // shard domain ID (cloud backbone is domain 0)
	Net     *simnet.Network
	Switch  *openflow.Switch
	EGS     *simnet.Host
	Clients []*simnet.Host
	Ctrl    *core.Controller
	Docker  *docker.Engine
	Runtime *container.Runtime

	// GNBs are the site's access switches (RegionOptions.GNBs; empty in
	// the flat topology), with each client's current cell and stable port.
	GNBs     []*openflow.Switch
	gnbOf    []int
	cliPorts []int

	// Trace / Counters are the site's obs handles (nil unless enabled).
	Trace    *obs.Tracer
	Counters *obs.Registry
	// FaultPlan is the site's materialized fault plan (nil without faults).
	FaultPlan *faults.Plan

	nextVIP int
}

// Regions is the assembled sharded scenario: R edge sites plus a cloud
// backbone domain holding the router, the public registries, and every
// service's cloud origin. Sites reach the cloud (image pulls, forwarded
// first requests) over cross-shard fabric links.
type Regions struct {
	Group  *sim.ShardGroup
	Fabric *simnet.Fabric
	Sites  []*Region

	CloudNet *simnet.Network
	Router   *simnet.Router
	Hub      *registry.Server
	GCR      *registry.Server

	origins map[string]*simnet.Host
}

// NewRegions assembles the sharded scenario. Every structural decision —
// addressing, link configs, registration order — depends only on opts, not
// on the shard count, so runs differ across Shards values only in which
// kernel executes which domain.
func NewRegions(opts RegionOptions) *Regions {
	if opts.Regions <= 0 {
		opts.Regions = DefaultRegions
	}
	if opts.ClientsPerRegion <= 0 {
		opts.ClientsPerRegion = 20
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	domains := opts.Regions + 1
	group := sim.NewShardGroup(domains, opts.Shards, opts.Seed, regionUplinkLatency)
	rs := &Regions{
		Group:   group,
		Fabric:  simnet.NewFabric(group),
		origins: make(map[string]*simnet.Host),
	}

	// Cloud backbone (domain 0): router, Docker Hub, GCR.
	rs.CloudNet = simnet.NewNetwork(group.Kernel(0))
	rs.Router = simnet.NewRouter(rs.CloudNet, "backbone")
	hubHost := simnet.NewHost(rs.CloudNet, "docker-hub", "198.51.100.10")
	rs.attachCloudHost(hubHost, simnet.LinkConfig{Name: "hub", Latency: hubLinkLatency, Bandwidth: hubLinkBandwidth})
	rs.Hub = registry.NewServer(hubHost, registry.ServerConfig{
		ManifestLatency: hubManifestLatency, BlobLatency: hubBlobLatency,
	})
	gcrHost := simnet.NewHost(rs.CloudNet, "gcr", "198.51.100.20")
	rs.attachCloudHost(gcrHost, simnet.LinkConfig{Name: "gcr", Latency: gcrLinkLatency, Bandwidth: gcrLinkBandwidth})
	rs.GCR = registry.NewServer(gcrHost, registry.ServerConfig{
		ManifestLatency: gcrManifestLatency, BlobLatency: gcrBlobLatency,
	})
	for _, img := range catalog.Images() {
		if img.Ref == catalog.ImgResNet {
			rs.GCR.Add(img)
		} else {
			rs.Hub.Add(img)
		}
	}
	resolver := registry.NewResolver()
	resolver.AddPrefix("", hubHost.IP())
	resolver.AddPrefix("gcr.io/", gcrHost.IP())

	behaviors := catalog.Behaviors()
	for i := 0; i < opts.Regions; i++ {
		d := i + 1
		k := group.Kernel(d)
		r := &Region{Domain: d, nextVIP: 10}
		if opts.Traced {
			r.Trace = obs.NewTracer(0)
		}
		if opts.Counted {
			r.Counters = obs.NewRegistry()
		}
		r.Net = simnet.NewNetwork(k)
		r.Net.SetObs(r.Counters)
		r.Switch = openflow.NewSwitch(r.Net, fmt.Sprintf("r%d/ovs", i), openflow.DefaultConfig())

		r.EGS = simnet.NewHost(r.Net, fmt.Sprintf("r%d/egs", i), simnet.Addr(fmt.Sprintf("10.%d.0.10", d)))
		r.EGS.ProcDelay = egsProcDelay
		r.Switch.AttachHost(r.EGS, 1, simnet.LinkConfig{
			Name: fmt.Sprintf("r%d/egs", i), Latency: egsLinkLatency, Bandwidth: egsLinkBandwidth,
		})

		// Backbone uplink: the site's only cross-shard link. The switch's
		// default route sends everything non-local (registry pulls, cloud
		// forwards) over it.
		swPort, rtPort := rs.Fabric.Connect(r.Net, r.Switch, d, rs.CloudNet, rs.Router, 0, simnet.LinkConfig{
			Name: fmt.Sprintf("r%d/uplink", i), Latency: regionUplinkLatency, Bandwidth: cloudUplinkBandwidth,
		})
		r.Switch.AddPort(2, swPort)
		r.Switch.SetDefaultRoute(2)
		rs.Router.AddRoute(r.EGS.IP(), rtPort)

		images := registry.NewClient(r.EGS, resolver, registry.DefaultClientConfig())
		r.Runtime = container.NewRuntime(r.EGS, images, RuntimeConfig())

		ctrlCfg := core.DefaultConfig()
		ctrlCfg.Scheduler = core.WaitNearestScheduler{}
		ctrlCfg.Trace = r.Trace
		ctrlCfg.Counters = r.Counters
		ctrlCfg.Steering = NewSteering(opts.SteerBackend)
		r.Ctrl = core.New(k, r.EGS, ctrlCfg)
		if opts.GNBs > 0 {
			r.GNBs = buildGNBs(r.Ctrl, r.Net, r.Switch, opts.GNBs, fmt.Sprintf("r%d/", i))
		} else {
			r.Ctrl.AddSwitch(r.Switch)
		}

		r.Docker = docker.New(fmt.Sprintf("r%d-docker", i), r.Runtime, behaviors, DockerConfig())
		r.Docker.SetObs(r.Counters)
		r.Ctrl.AddCluster(r.Docker, KindDocker)

		cliPort := 100
		for j := 0; j < opts.ClientsPerRegion; j++ {
			cli := simnet.NewHost(r.Net, fmt.Sprintf("r%d/rpi-%02d", i, j), simnet.Addr(fmt.Sprintf("10.%d.1.%d", d, j+1)))
			cli.ProcDelay = rpiProcDelay
			if len(r.GNBs) > 0 {
				g := attachClientGNB(r.GNBs, r.Switch, cli, j, cliPort)
				r.gnbOf = append(r.gnbOf, g)
				r.cliPorts = append(r.cliPorts, cliPort)
			} else {
				r.Switch.AttachHost(cli, cliPort, simnet.LinkConfig{
					Name: cli.Name(), Latency: rpiLinkLatency, Bandwidth: rpiLinkBandwidth,
				})
			}
			cliPort++
			rs.Router.AddRoute(cli.IP(), rtPort)
			r.Clients = append(r.Clients, cli)
		}

		if opts.Faults != nil && opts.Faults.Enabled() {
			r.FaultPlan = faults.NewPlan(*opts.Faults)
			r.FaultPlan.SetObs(r.Counters)
			r.Docker.SetFaults(r.FaultPlan.For(r.Docker.Name()))
			if opts.Faults.LinkLoss > 0 || opts.Faults.LinkExtraLatency > 0 {
				r.Net.ImpairAll(opts.Faults.LinkLoss, opts.Faults.LinkExtraLatency)
			}
		}
		rs.Sites = append(rs.Sites, r)
	}
	if opts.Faults != nil && opts.Faults.Enabled() &&
		(opts.Faults.LinkLoss > 0 || opts.Faults.LinkExtraLatency > 0) {
		rs.CloudNet.ImpairAll(opts.Faults.LinkLoss, opts.Faults.LinkExtraLatency)
	}
	return rs
}

func (rs *Regions) attachCloudHost(h *simnet.Host, link simnet.LinkConfig) {
	hp, rp := rs.CloudNet.Connect(h, rs.Router, link)
	h.SetUplink(hp)
	rs.Router.AddRoute(h.IP(), rp)
}

// RegisterCatalogService registers one Table I service with one region's
// controller and stands up its cloud origin in the backbone domain, so the
// first request's cloud forward (and every image pull) genuinely crosses
// the shard boundary. VIPs are per-region ("203.<domain>.113.<n>"), so the
// same catalog key can be registered independently at every site.
func (rs *Regions) RegisterCatalogService(region int, key string) (*spec.Annotated, spec.Registration, error) {
	r := rs.Sites[region]
	svc, err := catalog.Get(key)
	if err != nil {
		return nil, spec.Registration{}, err
	}
	reg := spec.Registration{
		Domain: fmt.Sprintf("%s-r%d-%d.example.com", sanitize(key), region, r.nextVIP),
		VIP:    simnet.Addr(fmt.Sprintf("203.%d.113.%d", r.Domain, r.nextVIP)),
		Port:   80,
	}
	r.nextVIP++
	a, err := r.Ctrl.RegisterService(svc.YAML, reg)
	if err != nil {
		return nil, spec.Registration{}, err
	}
	origin := simnet.NewHost(rs.CloudNet, "cloud-"+a.UniqueName, reg.VIP)
	rs.attachCloudHost(origin, simnet.LinkConfig{
		Name: "cloud-" + a.UniqueName, Latency: 2 * time.Millisecond, Bandwidth: 1 * simnet.Gbps,
	})
	behaviors := catalog.Behaviors()
	var b cluster.Behavior
	for _, cs := range a.Containers {
		cb := behaviors.Behavior(cs.Image)
		if cs.ContainerPort > 0 || b.RespSize == 0 {
			b = cb
		}
	}
	origin.ServeHTTPAsync(reg.Port, b.AsyncHandler())
	rs.origins[a.UniqueName] = origin
	return a, reg, nil
}

// Origin returns the cloud origin host of a registered service.
func (rs *Regions) Origin(uniqueName string) (*simnet.Host, bool) {
	h, ok := rs.origins[uniqueName]
	return h, ok
}

// Handover moves one region's client to another of that region's gNB
// cells — strictly intra-region, so the rewiring touches only the region's
// own shard domain. Must run on the region's kernel (the replay engine's
// mobility lane does); a no-op when the client already sits in the target
// cell. Panics without RegionOptions.GNBs.
func (rs *Regions) Handover(region, cli, to int) {
	r := rs.Sites[region]
	if len(r.GNBs) == 0 {
		panic("testbed: Handover requires RegionOptions.GNBs > 0")
	}
	cli = cli % len(r.Clients)
	from := r.gnbOf[cli]
	if from == to {
		return
	}
	moveClientGNB(r.Ctrl, r.GNBs, r.Switch, r.Clients[cli], r.cliPorts[cli], from, to)
	r.gnbOf[cli] = to
}

// Request issues one measured request from a region's client to a service
// registered at that region. It must run on the region's kernel.
func (rs *Regions) Request(p *sim.Proc, region, cli int, reg spec.Registration, key string, timeout time.Duration) (*simnet.HTTPResult, error) {
	r := rs.Sites[region]
	return r.Clients[cli%len(r.Clients)].HTTPGet(p, reg.VIP, reg.Port, catalog.Request(key), timeout)
}
