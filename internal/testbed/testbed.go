// Package testbed assembles the simulated counterpart of the paper's
// Carinthian Computing Continuum (C³) evaluation setup (fig. 8):
//
//   - the Edge Gateway Server (EGS) running the SDN controller, the virtual
//     OVS switch, a Docker engine, and a single-node Kubernetes cluster —
//     both cluster types sharing one containerd runtime, as on the real
//     EGS;
//   - twenty Raspberry Pi client hosts behind the switch (1 Gbps links,
//     slower per-packet processing than the EGS);
//   - a cloud uplink behind which the real (cloud) service origins, Docker
//     Hub, and the Google Container Registry live;
//   - an optional private container registry inside the edge network
//     (fig. 13's alternative pull source).
//
// All latency/bandwidth constants are calibrated so the simulated medians
// land in the paper's reported ranges; see DESIGN.md §7 and the catalog
// package for the rationale.
package testbed

import (
	"fmt"
	"strings"
	"time"

	"transparentedge/internal/catalog"
	"transparentedge/internal/cluster"
	"transparentedge/internal/container"
	"transparentedge/internal/core"
	"transparentedge/internal/docker"
	"transparentedge/internal/faults"
	"transparentedge/internal/kube"
	"transparentedge/internal/obs"
	"transparentedge/internal/openflow"
	"transparentedge/internal/registry"
	"transparentedge/internal/serverless"
	"transparentedge/internal/sim"
	"transparentedge/internal/simnet"
	"transparentedge/internal/spec"
	"transparentedge/internal/srsteer"
	"transparentedge/internal/steer"
)

// Cluster kind tags used with core.Controller.AddCluster.
const (
	KindDocker     = "docker"
	KindKubernetes = "kubernetes"
	KindServerless = "serverless"
)

// Options selects what to build.
type Options struct {
	Seed       int64
	NumClients int // default 20 (the paper's client RPis)
	// EnableDocker / EnableKube select the edge cluster types (the paper
	// evaluates each separately; enable both for the §VII hybrid).
	EnableDocker bool
	EnableKube   bool
	// EnableServerless adds the WASM-based serverless platform on the EGS
	// (the §VIII future-work side-by-side operation).
	EnableServerless bool
	// UsePrivateRegistry routes image pulls to the in-network registry
	// instead of Docker Hub / GCR (fig. 13's comparison).
	UsePrivateRegistry bool
	// EnableFarEdge adds a second, farther-away Docker edge cluster
	// ("far-docker"): the paper's fig. 3 scenario, where the initial
	// request is served by a running instance in an edge further away
	// while the optimal edge deploys in the background. Edge clusters are
	// usually organized hierarchically, with the farther cluster more
	// likely to have the service cached or running.
	EnableFarEdge bool
	// Scheduler overrides the Global Scheduler (default: wait-nearest, the
	// policy under which the paper's deployment-time figures are
	// measured). Use core.NewScheduler to load one by name.
	Scheduler core.GlobalScheduler
	// AutoScaleDown enables idle-instance scale-down via the FlowMemory.
	AutoScaleDown bool
	// SwitchIdleTimeout / MemoryIdleTimeout override controller defaults
	// when non-zero.
	SwitchIdleTimeout time.Duration
	MemoryIdleTimeout time.Duration
	// LocalSchedulerName is annotated into service definitions (§V).
	LocalSchedulerName string
	// ProbeInterval overrides the controller's readiness-probe interval
	// when non-zero.
	ProbeInterval time.Duration
	// ProbeMaxWait overrides the controller's readiness-probe deadline when
	// non-zero (negative waits forever, as before the deadline existed).
	ProbeMaxWait time.Duration
	// DeployRetries / DeployBackoffBase / DeployBackoffMax configure the
	// controller's per-phase deployment retry policy when non-zero.
	DeployRetries     int
	DeployBackoffBase time.Duration
	DeployBackoffMax  time.Duration
	// Faults, when non-nil and enabled, injects deterministic failures into
	// the clusters and (via LinkLoss/LinkExtraLatency) the network. A nil or
	// all-zero spec leaves every fault hook nil — zero cost, bit-identical
	// traces.
	Faults *faults.Spec
	// Predictor, when set, enables proactive deployment: the controller
	// pre-deploys services the predictor expects to be requested within
	// PredictHorizon, checking every PredictInterval.
	Predictor       core.Predictor
	PredictInterval time.Duration
	PredictHorizon  time.Duration
	// Log receives controller event lines (legacy printf hook); Events is
	// the structured replacement and wins when both are set.
	Log    func(format string, args ...any)
	Events func(obs.Event)
	// Trace, when set, records per-request span trees across the whole
	// stack (dispatch pipeline, deploy phases, probing). Nil = off at zero
	// cost.
	Trace *obs.Tracer
	// Counters, when set, registers the controller's, network's, clusters'
	// and fault plan's counters in the registry. Nil = off at zero cost.
	Counters *obs.Registry
	// SteerBackend selects the steering backend by name: "" or "openflow"
	// builds the paper's per-flow rule installer, "srv6" (alias "srsteer")
	// the stateless ingress-encapsulation backend. See NewSteering.
	SteerBackend string
	// GNBs inserts that many gNB access switches between the clients and
	// the site switch — the radio attachment points the mobility workload
	// hands clients over between (Handover). Client i starts on gNB
	// i % GNBs; the site switch becomes a transit switch (no punt rules)
	// and each gNB punts to the controller. 0 keeps the flat topology,
	// byte-identical to before the option existed.
	GNBs int
}

// NewSteering maps a backend name to a fresh steer.Steering: "" and
// "openflow" select the rule-install backend (nil is returned for "", so
// core.New applies its own default), "srv6"/"srsteer" the stateless one.
// Unknown names panic — backend selection is experiment configuration, and
// silently running the wrong backend would invalidate a comparison.
func NewSteering(name string) steer.Steering {
	switch name {
	case "":
		return nil
	case "openflow":
		return steer.NewOpenFlow()
	case "srv6", "srsteer":
		return srsteer.New()
	default:
		panic(fmt.Sprintf("testbed: unknown steering backend %q", name))
	}
}

// Testbed is the assembled simulation.
type Testbed struct {
	K       *sim.Kernel
	Net     *simnet.Network
	Switch  *openflow.Switch
	EGS     *simnet.Host
	Clients []*simnet.Host
	Ctrl    *core.Controller
	Docker  *docker.Engine
	Kube    *kube.Cluster
	Runtime *container.Runtime

	// Serverless is the optional WASM platform on the EGS (§VIII).
	Serverless *serverless.Platform

	// FarDocker is the optional farther-away edge cluster (EnableFarEdge)
	// with its own host and runtime.
	FarDocker  *docker.Engine
	FarHost    *simnet.Host
	FarRuntime *container.Runtime

	// GNBs are the access switches of the mobility topology (Options.GNBs;
	// empty in the flat topology). gnbOf / cliPorts track each client's
	// current cell and its stable gNB port number.
	GNBs     []*openflow.Switch
	gnbOf    []int
	cliPorts []int

	Hub     *registry.Server
	GCR     *registry.Server
	Private *registry.Server

	// FaultPlan is the materialized fault plan (nil when faults are off).
	FaultPlan *faults.Plan

	cloudRouter *simnet.Router
	cloudPort   int // switch port toward the cloud
	nextVIP     int
	nextCliPort int
	origins     map[string]*simnet.Host // unique service name -> cloud origin
}

// Calibrated constants (see package comment).
const (
	egsLinkLatency   = 50 * time.Microsecond
	egsLinkBandwidth = 10 * simnet.Gbps
	rpiLinkLatency   = 150 * time.Microsecond
	rpiLinkBandwidth = 1 * simnet.Gbps
	rpiProcDelay     = 200 * time.Microsecond
	egsProcDelay     = 20 * time.Microsecond

	cloudUplinkLatency   = 8 * time.Millisecond
	cloudUplinkBandwidth = 1 * simnet.Gbps
	hubLinkLatency       = 9 * time.Millisecond
	hubLinkBandwidth     = 400 * simnet.Mbps
	gcrLinkLatency       = 7 * time.Millisecond
	gcrLinkBandwidth     = 500 * simnet.Mbps
	privLinkLatency      = 200 * time.Microsecond
	privLinkBandwidth    = 900 * simnet.Mbps

	hubManifestLatency  = 200 * time.Millisecond
	hubBlobLatency      = 120 * time.Millisecond
	gcrManifestLatency  = 160 * time.Millisecond
	gcrBlobLatency      = 100 * time.Millisecond
	privManifestLatency = 8 * time.Millisecond
	privBlobLatency     = 4 * time.Millisecond
)

// DockerConfig returns the calibrated Docker engine configuration.
func DockerConfig() docker.Config {
	return docker.Config{APILatency: 25 * time.Millisecond, PortRangeStart: 32000}
}

// RuntimeConfig returns the calibrated containerd configuration for the EGS.
func RuntimeConfig() container.RuntimeConfig {
	return container.RuntimeConfig{
		CreateDelay: 45 * time.Millisecond,
		StartDelay:  380 * time.Millisecond,
		StopDelay:   60 * time.Millisecond,
		RemoveDelay: 40 * time.Millisecond,
	}
}

// KubeConfig returns the calibrated single-node Kubernetes configuration.
func KubeConfig() kube.Config {
	cfg := kube.DefaultConfig()
	cfg.Scheduler.BindingDelay = 400 * time.Millisecond
	cfg.Kubelet.SandboxDelay = 1350 * time.Millisecond
	return cfg
}

// New assembles a testbed.
func New(opts Options) *Testbed {
	if opts.NumClients <= 0 {
		opts.NumClients = 20
	}
	if opts.Scheduler == nil {
		opts.Scheduler = core.WaitNearestScheduler{}
	}
	k := sim.New(opts.Seed)
	n := simnet.NewNetwork(k)
	tb := &Testbed{
		K:           k,
		Net:         n,
		nextVIP:     10,
		nextCliPort: 100,
		origins:     make(map[string]*simnet.Host),
	}

	tb.Switch = openflow.NewSwitch(n, "ovs", openflow.DefaultConfig())

	// EGS.
	tb.EGS = simnet.NewHost(n, "egs", "10.0.0.10")
	tb.EGS.ProcDelay = egsProcDelay
	tb.Switch.AttachHost(tb.EGS, 1, simnet.LinkConfig{
		Name: "egs", Latency: egsLinkLatency, Bandwidth: egsLinkBandwidth,
	})

	// Cloud router + uplink.
	tb.cloudRouter = simnet.NewRouter(n, "cloud-gw")
	swPort, crPort := n.Connect(tb.Switch, tb.cloudRouter, simnet.LinkConfig{
		Name: "uplink", Latency: cloudUplinkLatency, Bandwidth: cloudUplinkBandwidth,
	})
	tb.cloudPort = 2
	tb.Switch.AddPort(tb.cloudPort, swPort)
	tb.Switch.SetDefaultRoute(tb.cloudPort)
	tb.cloudRouter.SetDefault(crPort) // back toward the edge network

	// Registries.
	hubHost := simnet.NewHost(n, "docker-hub", "198.51.100.10")
	tb.attachCloudHost(hubHost, simnet.LinkConfig{Name: "hub", Latency: hubLinkLatency, Bandwidth: hubLinkBandwidth})
	tb.Hub = registry.NewServer(hubHost, registry.ServerConfig{
		ManifestLatency: hubManifestLatency, BlobLatency: hubBlobLatency,
	})
	gcrHost := simnet.NewHost(n, "gcr", "198.51.100.20")
	tb.attachCloudHost(gcrHost, simnet.LinkConfig{Name: "gcr", Latency: gcrLinkLatency, Bandwidth: gcrLinkBandwidth})
	tb.GCR = registry.NewServer(gcrHost, registry.ServerConfig{
		ManifestLatency: gcrManifestLatency, BlobLatency: gcrBlobLatency,
	})
	privHost := simnet.NewHost(n, "private-registry", "10.0.0.50")
	tb.Switch.AttachHost(privHost, 3, simnet.LinkConfig{
		Name: "private", Latency: privLinkLatency, Bandwidth: privLinkBandwidth,
	})
	tb.Private = registry.NewServer(privHost, registry.ServerConfig{
		ManifestLatency: privManifestLatency, BlobLatency: privBlobLatency,
	})
	for _, img := range catalog.Images() {
		// Publish everywhere; the resolver decides where pulls go.
		tb.Private.Add(img)
		if img.Ref == catalog.ImgResNet {
			tb.GCR.Add(img)
		} else {
			tb.Hub.Add(img)
		}
	}

	resolver := registry.NewResolver()
	if opts.UsePrivateRegistry {
		resolver.AddPrefix("", privHost.IP())
	} else {
		resolver.AddPrefix("", hubHost.IP())
		resolver.AddPrefix("gcr.io/", gcrHost.IP())
	}

	// The shared containerd runtime on the EGS.
	images := registry.NewClient(tb.EGS, resolver, registry.DefaultClientConfig())
	tb.Runtime = container.NewRuntime(tb.EGS, images, RuntimeConfig())
	behaviors := catalog.Behaviors()

	// Controller.
	ctrlCfg := core.DefaultConfig()
	ctrlCfg.Scheduler = opts.Scheduler
	ctrlCfg.AutoScaleDown = opts.AutoScaleDown
	ctrlCfg.LocalSchedulerName = opts.LocalSchedulerName
	ctrlCfg.Log = opts.Log
	ctrlCfg.Events = opts.Events
	ctrlCfg.Trace = opts.Trace
	ctrlCfg.Counters = opts.Counters
	ctrlCfg.Steering = NewSteering(opts.SteerBackend)
	tb.Net.SetObs(opts.Counters)
	if opts.SwitchIdleTimeout > 0 {
		ctrlCfg.SwitchIdleTimeout = opts.SwitchIdleTimeout
	}
	if opts.MemoryIdleTimeout > 0 {
		ctrlCfg.MemoryIdleTimeout = opts.MemoryIdleTimeout
	}
	if opts.ProbeInterval > 0 {
		ctrlCfg.ProbeInterval = opts.ProbeInterval
	}
	if opts.ProbeMaxWait != 0 {
		ctrlCfg.ProbeMaxWait = opts.ProbeMaxWait
	}
	if opts.DeployRetries > 0 {
		ctrlCfg.DeployRetries = opts.DeployRetries
	}
	if opts.DeployBackoffBase != 0 {
		ctrlCfg.DeployBackoffBase = opts.DeployBackoffBase
	}
	if opts.DeployBackoffMax != 0 {
		ctrlCfg.DeployBackoffMax = opts.DeployBackoffMax
	}
	// Distance model: clusters on the EGS are nearest (0); the far edge
	// ranks behind them (1); Docker vs Kubernetes on the same EGS tie and
	// fall back to registration order.
	ctrlCfg.Distance = func(client simnet.Addr, cl cluster.Cluster) int {
		if strings.HasPrefix(cl.Name(), "far-") {
			return 1
		}
		return 0
	}
	tb.Ctrl = core.New(k, tb.EGS, ctrlCfg)
	if opts.GNBs > 0 {
		tb.GNBs = buildGNBs(tb.Ctrl, n, tb.Switch, opts.GNBs, "")
	} else {
		tb.Ctrl.AddSwitch(tb.Switch)
	}

	if opts.EnableDocker {
		tb.Docker = docker.New("egs-docker", tb.Runtime, behaviors, DockerConfig())
		tb.Docker.SetObs(opts.Counters)
		tb.Ctrl.AddCluster(tb.Docker, KindDocker)
	}
	if opts.EnableKube {
		kubeCfg := KubeConfig()
		if opts.LocalSchedulerName != "" {
			// Run the configured Local Scheduler (§IV-B) alongside the
			// default scheduler so annotated pods get bound.
			kubeCfg.LocalSched = &kube.SchedulerConfig{
				Name:         opts.LocalSchedulerName,
				BindingDelay: 300 * time.Millisecond,
			}
		}
		kc := kube.New("egs-k8s", k, kubeCfg)
		kc.SetObs(opts.Counters)
		kc.AddNode("egs", tb.Runtime, behaviors)
		kc.Start()
		tb.Kube = kc
		tb.Ctrl.AddCluster(tb.Kube, KindKubernetes)
	}

	if opts.EnableServerless {
		// The platform keeps its own module store: WASM modules are a
		// different artifact type than container images.
		moduleStore := registry.NewClient(tb.EGS, resolver, registry.DefaultClientConfig())
		tb.Serverless = serverless.New("egs-serverless", tb.EGS, moduleStore, behaviors, serverless.DefaultConfig())
		tb.Serverless.SetObs(opts.Counters)
		tb.Ctrl.AddCluster(tb.Serverless, KindServerless)
	}

	if opts.EnableFarEdge {
		tb.FarHost = simnet.NewHost(n, "far-edge", "10.0.2.10")
		tb.FarHost.ProcDelay = egsProcDelay
		tb.Switch.AttachHost(tb.FarHost, 4, simnet.LinkConfig{
			Name: "far-edge", Latency: 2 * time.Millisecond, Bandwidth: 1 * simnet.Gbps,
		})
		farImages := registry.NewClient(tb.FarHost, resolver, registry.DefaultClientConfig())
		tb.FarRuntime = container.NewRuntime(tb.FarHost, farImages, RuntimeConfig())
		tb.FarDocker = docker.New("far-docker", tb.FarRuntime, behaviors, DockerConfig())
		tb.FarDocker.SetObs(opts.Counters)
		tb.Ctrl.AddCluster(tb.FarDocker, KindDocker)
	}

	if opts.Predictor != nil {
		interval := opts.PredictInterval
		if interval <= 0 {
			interval = 5 * time.Second
		}
		horizon := opts.PredictHorizon
		if horizon <= 0 {
			horizon = 15 * time.Second
		}
		tb.Ctrl.StartProactive(opts.Predictor, interval, horizon)
	}

	// Clients.
	for i := 0; i < opts.NumClients; i++ {
		cli := simnet.NewHost(n, fmt.Sprintf("rpi-%02d", i), simnet.Addr(fmt.Sprintf("10.0.1.%d", i+1)))
		cli.ProcDelay = rpiProcDelay
		if len(tb.GNBs) > 0 {
			g := attachClientGNB(tb.GNBs, tb.Switch, cli, i, tb.nextCliPort)
			tb.gnbOf = append(tb.gnbOf, g)
			tb.cliPorts = append(tb.cliPorts, tb.nextCliPort)
		} else {
			tb.Switch.AttachHost(cli, tb.nextCliPort, simnet.LinkConfig{
				Name: cli.Name(), Latency: rpiLinkLatency, Bandwidth: rpiLinkBandwidth,
			})
		}
		tb.nextCliPort++
		tb.Clients = append(tb.Clients, cli)
	}

	// Fault plan: attached last so every cluster and link exists. For a nil
	// or disabled spec this leaves every injector nil (the zero-cost path).
	if opts.Faults != nil && opts.Faults.Enabled() {
		tb.FaultPlan = faults.NewPlan(*opts.Faults)
		tb.FaultPlan.SetObs(opts.Counters)
		if tb.Docker != nil {
			tb.Docker.SetFaults(tb.FaultPlan.For(tb.Docker.Name()))
		}
		if tb.Kube != nil {
			tb.Kube.SetFaults(tb.FaultPlan.For(tb.Kube.Name()))
		}
		if tb.Serverless != nil {
			tb.Serverless.SetFaults(tb.FaultPlan.For(tb.Serverless.Name()))
		}
		if tb.FarDocker != nil {
			tb.FarDocker.SetFaults(tb.FaultPlan.For(tb.FarDocker.Name()))
		}
		if opts.Faults.LinkLoss > 0 || opts.Faults.LinkExtraLatency > 0 {
			tb.Net.ImpairAll(opts.Faults.LinkLoss, opts.Faults.LinkExtraLatency)
		}
	}
	return tb
}

func (tb *Testbed) attachCloudHost(h *simnet.Host, link simnet.LinkConfig) {
	hp, rp := tb.Net.Connect(h, tb.cloudRouter, link)
	h.SetUplink(hp)
	tb.cloudRouter.AddRoute(h.IP(), rp)
}

// RegisterService registers a custom edge service from a YAML definition:
// it allocates a cloud VIP, registers with the controller, and creates the
// cloud origin. behaviorImage selects the catalog behavior used for the
// cloud origin's handler ("" for a generic fast handler).
func (tb *Testbed) RegisterService(yamlSrc, domain string) (*spec.Annotated, spec.Registration, error) {
	reg := spec.Registration{
		Domain: domain,
		VIP:    simnet.Addr(fmt.Sprintf("203.0.113.%d", tb.nextVIP)),
		Port:   80,
	}
	tb.nextVIP++
	a, err := tb.Ctrl.RegisterService(yamlSrc, reg)
	if err != nil {
		return nil, spec.Registration{}, err
	}
	tb.createCloudOrigin(a, reg, "")
	return a, reg, nil
}

// RegisterCatalogService registers one of the paper's Table I services: it
// allocates a cloud VIP, creates the cloud origin host that really serves
// that address (the "perceived cloud" of fig. 1 must exist for forwarding
// without an edge instance), and registers the service with the controller.
func (tb *Testbed) RegisterCatalogService(key string) (*spec.Annotated, spec.Registration, error) {
	svc, err := catalog.Get(key)
	if err != nil {
		return nil, spec.Registration{}, err
	}
	reg := spec.Registration{
		Domain: fmt.Sprintf("%s-%d.example.com", sanitize(key), tb.nextVIP),
		VIP:    simnet.Addr(fmt.Sprintf("203.0.113.%d", tb.nextVIP)),
		Port:   80,
	}
	tb.nextVIP++
	a, err := tb.Ctrl.RegisterService(svc.YAML, reg)
	if err != nil {
		return nil, spec.Registration{}, err
	}
	tb.createCloudOrigin(a, reg, key)
	return a, reg, nil
}

func sanitize(key string) string {
	out := make([]rune, 0, len(key))
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

// createCloudOrigin stands up the real cloud instance of a registered
// service behind the cloud router.
func (tb *Testbed) createCloudOrigin(a *spec.Annotated, reg spec.Registration, key string) {
	origin := simnet.NewHost(tb.Net, "cloud-"+a.UniqueName, reg.VIP)
	tb.attachCloudHost(origin, simnet.LinkConfig{
		Name: "cloud-" + a.UniqueName, Latency: 2 * time.Millisecond, Bandwidth: 1 * simnet.Gbps,
	})
	behaviors := catalog.Behaviors()
	var b cluster.Behavior
	for _, cs := range a.Containers {
		cb := behaviors.Behavior(cs.Image)
		if cs.ContainerPort > 0 || b.RespSize == 0 {
			b = cb
		}
	}
	origin.ServeHTTPAsync(reg.Port, b.AsyncHandler())
	tb.origins[a.UniqueName] = origin
}

// Origin returns the cloud origin host of a registered service.
func (tb *Testbed) Origin(uniqueName string) (*simnet.Host, bool) {
	h, ok := tb.origins[uniqueName]
	return h, ok
}

// Request issues one measured request (timecurl-style) from client index
// cli to the registered service, with the catalog request shape for key.
// timeout 0 waits forever (on-demand with waiting).
func (tb *Testbed) Request(p *sim.Proc, cli int, reg spec.Registration, key string, timeout time.Duration) (*simnet.HTTPResult, error) {
	return tb.Clients[cli].HTTPGet(p, reg.VIP, reg.Port, catalog.Request(key), timeout)
}

// RequestAsync issues the same measured request as Request without blocking
// a process: done runs inside the completion event. This is the replay
// engine's hot path — both replay strategies route through it, which is what
// keeps them bit-identical to each other.
func (tb *Testbed) RequestAsync(cli int, reg spec.Registration, key string, timeout time.Duration, done func(*simnet.HTTPResult, error)) {
	tb.Clients[cli].HTTPGetAsync(reg.VIP, reg.Port, catalog.Request(key), timeout, done)
}

// Handover moves a client to another gNB cell: the old radio link is
// severed (in-flight packets drop — simnet.Host.Detach semantics), the
// client re-attaches under its stable port number, both switches' routes
// are rewired, and the controller is notified (core.NoteHandover). Runs in
// kernel context; a no-op when the client is already in the target cell.
// Panics without Options.GNBs — a flat topology has nowhere to hand over to.
func (tb *Testbed) Handover(cli, to int) {
	if len(tb.GNBs) == 0 {
		panic("testbed: Handover requires Options.GNBs > 0")
	}
	from := tb.gnbOf[cli]
	if from == to {
		return
	}
	moveClientGNB(tb.Ctrl, tb.GNBs, tb.Switch, tb.Clients[cli], tb.cliPorts[cli], from, to)
	tb.gnbOf[cli] = to
}

// ClientCell returns the gNB cell a client currently occupies (0 in the
// flat topology).
func (tb *Testbed) ClientCell(cli int) int {
	if len(tb.gnbOf) == 0 {
		return 0
	}
	return tb.gnbOf[cli]
}

// ClusterByKind returns the testbed cluster of the given kind (nil if not
// enabled).
func (tb *Testbed) ClusterByKind(kind string) cluster.Cluster {
	switch kind {
	case KindDocker:
		if tb.Docker == nil {
			return nil
		}
		return tb.Docker
	case KindKubernetes:
		if tb.Kube == nil {
			return nil
		}
		return tb.Kube
	case KindServerless:
		if tb.Serverless == nil {
			return nil
		}
		return tb.Serverless
	}
	return nil
}
