package testbed

import (
	"errors"
	"testing"
	"time"

	"transparentedge/internal/catalog"
	"transparentedge/internal/core"
	"transparentedge/internal/sim"
	"transparentedge/internal/simnet"
)

func TestOnDemandWithWaitingDocker(t *testing.T) {
	tb := New(Options{Seed: 1, EnableDocker: true})
	a, reg, err := tb.RegisterCatalogService(catalog.Nginx)
	if err != nil {
		t.Fatal(err)
	}
	var first, second *simnet.HTTPResult
	tb.K.Go("client", func(p *sim.Proc) {
		var err error
		first, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("first request: %v", err)
			return
		}
		second, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("second request: %v", err)
		}
	})
	tb.K.RunUntil(time.Minute)
	if first == nil || second == nil {
		t.Fatal("requests did not complete")
	}
	// Cached image + created-on-demand: the initial request includes pull
	// though — cold cache! First request = pull + create + scale-up.
	if first.Total < time.Second {
		t.Errorf("first (cold) request = %v, expected pull-dominated seconds", first.Total)
	}
	if second.Total > 5*time.Millisecond {
		t.Errorf("second request = %v, want ~1ms (flow installed)", second.Total)
	}
	if !tb.Docker.Running(a.UniqueName) {
		t.Error("service not running on docker after request")
	}
	recs := tb.Ctrl.RecordsFor("egs-docker", a.UniqueName)
	if len(recs) != 1 || !recs[0].DidPull || !recs[0].DidCreate || !recs[0].DidScaleUp {
		t.Errorf("records = %+v", recs)
	}
	if tb.Ctrl.Stats.PacketIns != 1 {
		t.Errorf("packet-ins = %d, want 1 (second request used installed flow)", tb.Ctrl.Stats.PacketIns)
	}
}

func TestWarmScaleUpDockerUnderOneSecond(t *testing.T) {
	// The paper's fig. 11 condition: image cached, containers created;
	// only scale-up on the request path.
	tb := New(Options{Seed: 1, EnableDocker: true})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	var res *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		// Warm up: deploy, then scale down (leaves image + containers).
		if _, err := tb.Ctrl.EnsureDeployed(p, "egs-docker", a.UniqueName); err != nil {
			t.Errorf("warmup: %v", err)
			return
		}
		tb.Ctrl.ScaleDownService(p, "egs-docker", a.UniqueName)
		p.Sleep(time.Second)
		tb.Ctrl.ResetRecords()
		var err error
		res, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("request: %v", err)
		}
	})
	tb.K.RunUntil(5 * time.Minute)
	if res == nil {
		t.Fatal("no response")
	}
	if res.Total > time.Second {
		t.Fatalf("docker scale-up total = %v, want <1s (paper fig. 11)", res.Total)
	}
	recs := tb.Ctrl.RecordsFor("egs-docker", a.UniqueName)
	if len(recs) != 1 || recs[0].DidPull || recs[0].DidCreate || !recs[0].DidScaleUp {
		t.Fatalf("records = %+v, want scale-up only", recs)
	}
}

func TestWarmScaleUpKubeAroundThreeSeconds(t *testing.T) {
	tb := New(Options{Seed: 1, EnableKube: true})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	var res *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		if _, err := tb.Ctrl.EnsureDeployed(p, "egs-k8s", a.UniqueName); err != nil {
			t.Errorf("warmup: %v", err)
			return
		}
		tb.Ctrl.ScaleDownService(p, "egs-k8s", a.UniqueName)
		p.Sleep(10 * time.Second) // let the pod terminate
		var err error
		res, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("request: %v", err)
		}
	})
	tb.K.RunUntil(10 * time.Minute)
	if res == nil {
		t.Fatal("no response")
	}
	if res.Total < 2*time.Second || res.Total > 4*time.Second {
		t.Fatalf("k8s scale-up total = %v, want ~3s (paper fig. 11)", res.Total)
	}
}

func TestWarmRequestAboutOneMillisecond(t *testing.T) {
	// Fig. 16: instance already running.
	tb := New(Options{Seed: 1, EnableDocker: true})
	a, reg, _ := tb.RegisterCatalogService(catalog.Asm)
	var res *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		tb.Ctrl.EnsureDeployed(p, "egs-docker", a.UniqueName)
		// Prime the flow with one request, then measure.
		tb.Request(p, 0, reg, catalog.Asm, 0)
		var err error
		res, err = tb.Request(p, 0, reg, catalog.Asm, 0)
		if err != nil {
			t.Errorf("request: %v", err)
		}
	})
	tb.K.RunUntil(5 * time.Minute)
	if res == nil {
		t.Fatal("no response")
	}
	if res.Total > 3*time.Millisecond {
		t.Fatalf("warm request = %v, want ~1ms (paper fig. 16)", res.Total)
	}
}

func TestNoWaitForwardsToCloudThenEdge(t *testing.T) {
	sched, err := core.NewScheduler("no-wait")
	if err != nil {
		t.Fatal(err)
	}
	tb := New(Options{Seed: 1, EnableDocker: true, Scheduler: sched})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	var first, later *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		var err error
		first, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("first: %v", err)
			return
		}
		// Give the background deployment time to finish, let the switch
		// flow expire so the next packet-in consults the (redirected)
		// memory... the flow is pass-through to the cloud with a 10s idle
		// timeout, so wait it out.
		p.Sleep(30 * time.Second)
		later, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("later: %v", err)
		}
	})
	tb.K.RunUntil(10 * time.Minute)
	if first == nil || later == nil {
		t.Fatal("requests did not complete")
	}
	// First request was NOT held: it went to the cloud (tens of ms — the
	// 8ms uplink + 2ms origin link round trips), far below a deployment.
	if first.Total > 200*time.Millisecond {
		t.Fatalf("first (no-wait) = %v, want cloud-forwarded tens of ms", first.Total)
	}
	if tb.Ctrl.Stats.CloudForwards == 0 {
		t.Error("no cloud forward recorded")
	}
	// The edge instance was deployed in the background and the later
	// request is served at the edge.
	if !tb.Docker.Running(a.UniqueName) {
		t.Error("background deployment did not run")
	}
	// The later request pays one controller dispatch (incl. cluster state
	// queries) before reaching the edge instance.
	if later.Total > 30*time.Millisecond {
		t.Fatalf("later request = %v, want edge latency", later.Total)
	}
}

func TestFlowMemoryServesAfterSwitchFlowExpiry(t *testing.T) {
	tb := New(Options{
		Seed: 1, EnableDocker: true,
		SwitchIdleTimeout: time.Second,
		MemoryIdleTimeout: 5 * time.Minute,
	})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	var second *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		tb.Ctrl.EnsureDeployed(p, "egs-docker", a.UniqueName)
		tb.Request(p, 0, reg, catalog.Nginx, 0)
		p.Sleep(5 * time.Second) // switch flow expired; memory alive
		var err error
		second, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("second: %v", err)
		}
	})
	tb.K.RunUntil(time.Minute)
	if second == nil {
		t.Fatal("no response")
	}
	if tb.Ctrl.Stats.MemoryServed == 0 {
		t.Fatal("FlowMemory did not serve the returning client")
	}
	// Memory-served requests skip scheduling and deployment: only a
	// controller round trip is added.
	if second.Total > 5*time.Millisecond {
		t.Fatalf("memory-served request = %v", second.Total)
	}
}

func TestAutoScaleDownAfterMemoryExpiry(t *testing.T) {
	tb := New(Options{
		Seed: 1, EnableDocker: true,
		SwitchIdleTimeout: time.Second,
		MemoryIdleTimeout: 10 * time.Second,
		AutoScaleDown:     true,
	})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	tb.K.Go("driver", func(p *sim.Proc) {
		if _, err := tb.Request(p, 0, reg, catalog.Nginx, 0); err != nil {
			t.Errorf("request: %v", err)
		}
	})
	tb.K.RunUntil(2 * time.Minute)
	if tb.Docker.Running(a.UniqueName) {
		t.Fatal("idle service not scaled down after FlowMemory expiry")
	}
	if !tb.Docker.Exists(a.UniqueName) {
		t.Fatal("scale-down removed the service entirely")
	}
}

func TestHybridDockerFirstThenKubernetes(t *testing.T) {
	sched, err := core.NewScheduler("docker-first")
	if err != nil {
		t.Fatal(err)
	}
	tb := New(Options{
		Seed: 1, EnableDocker: true, EnableKube: true, Scheduler: sched,
		SwitchIdleTimeout: 2 * time.Second,
	})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	var first, later *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		// Pre-pull so the first request measures the §VII contrast
		// (start times), not the shared pull.
		tb.Docker.Pull(p, a)
		var err error
		first, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("first: %v", err)
			return
		}
		p.Sleep(time.Minute) // background K8s deployment + flow expiry
		later, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("later: %v", err)
			return
		}
		// Inspect the memory now, before idle expiry clears it.
		ep, _ := tb.Kube.Endpoint(a.UniqueName)
		found := false
		for _, e := range tb.Ctrl.Memory.Entries() {
			if e.Instance.Cluster == "egs-k8s" && e.Instance.Port == ep.Port {
				found = true
			}
		}
		if !found {
			t.Errorf("memory entries not pointing at kubernetes: %+v", tb.Ctrl.Memory.Entries())
		}
	})
	tb.K.RunUntil(10 * time.Minute)
	if first == nil || later == nil {
		t.Fatal("requests did not complete")
	}
	// First answered by Docker: sub-second.
	if first.Total > 1200*time.Millisecond {
		t.Fatalf("first (docker) = %v, want <1s", first.Total)
	}
	// Kubernetes took over for future requests.
	if !tb.Kube.Running(a.UniqueName) {
		t.Fatal("kubernetes instance not deployed in background")
	}
	if tb.Ctrl.Stats.Redirections == 0 {
		t.Fatal("FlowMemory was not redirected to the kubernetes instance")
	}
	if later.Total > 5*time.Millisecond {
		t.Fatalf("later request = %v, want edge latency via k8s", later.Total)
	}
}

func TestPrivateRegistrySpeedsUpPull(t *testing.T) {
	pull := func(private bool) time.Duration {
		tb := New(Options{Seed: 1, EnableDocker: true, UsePrivateRegistry: private})
		a, _, _ := tb.RegisterCatalogService(catalog.Nginx)
		var d time.Duration
		tb.K.Go("driver", func(p *sim.Proc) {
			t0 := p.Now()
			if err := tb.Docker.Pull(p, a); err != nil {
				t.Errorf("pull: %v", err)
			}
			d = p.Now() - t0
		})
		tb.K.RunUntil(5 * time.Minute)
		return d
	}
	hub := pull(false)
	priv := pull(true)
	saving := hub - priv
	// Fig. 13: "pull times improve by about 1.5 to 2 seconds".
	if saving < time.Second || saving > 3*time.Second {
		t.Fatalf("private registry saving = %v (hub %v, private %v), want ~1.5-2s", saving, hub, priv)
	}
}

func TestSharedRuntimeBetweenDockerAndKube(t *testing.T) {
	// Both clusters run over the same containerd: an image pulled for
	// Docker is cached for Kubernetes (paper: same containerd on the EGS).
	tb := New(Options{Seed: 1, EnableDocker: true, EnableKube: true})
	a, _, _ := tb.RegisterCatalogService(catalog.Nginx)
	tb.K.Go("driver", func(p *sim.Proc) {
		if err := tb.Docker.Pull(p, a); err != nil {
			t.Errorf("pull: %v", err)
			return
		}
		if !tb.Kube.HasImages(a) {
			t.Error("kube cluster does not see the shared image cache")
		}
	})
	tb.K.RunUntil(5 * time.Minute)
}

func TestConcurrentClientsShareOneDeployment(t *testing.T) {
	// Several clients hitting the same cold service must trigger exactly
	// one deployment (fig. 10's dedup requirement), and all get answers.
	tb := New(Options{Seed: 1, EnableDocker: true})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	done := 0
	for i := 0; i < 5; i++ {
		i := i
		tb.K.Go("client", func(p *sim.Proc) {
			if _, err := tb.Request(p, i, reg, catalog.Nginx, 0); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			done++
		})
	}
	tb.K.RunUntil(time.Minute)
	if done != 5 {
		t.Fatalf("responses = %d, want 5", done)
	}
	recs := tb.Ctrl.RecordsFor("egs-docker", a.UniqueName)
	deployed := 0
	for _, r := range recs {
		if r.DidScaleUp {
			deployed++
		}
	}
	if deployed != 1 {
		t.Fatalf("deployments = %d, want 1 (deduplicated)", deployed)
	}
	if got := len(tb.Docker.Containers(a.UniqueName)); got != 1 {
		t.Fatalf("containers = %d, want 1", got)
	}
}

func TestUnregisteredAddressPassesThrough(t *testing.T) {
	// Traffic to a non-registered cloud address must flow normally (the
	// transparent edge intercepts only registered services).
	tb := New(Options{Seed: 1, EnableDocker: true})
	other := simnet.NewHost(tb.Net, "plain-cloud", "203.0.113.200")
	tb.attachCloudHost(other, simnet.LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: simnet.Gbps})
	other.ServeHTTP(80, func(p *sim.Proc, req *simnet.HTTPRequest) *simnet.HTTPResponse {
		return &simnet.HTTPResponse{Status: 200, Body: "plain"}
	})
	var res *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		var err error
		res, err = tb.Clients[0].HTTPGet(p, other.IP(), 80, &simnet.HTTPRequest{}, 0)
		if err != nil {
			t.Errorf("request: %v", err)
		}
	})
	tb.K.RunUntil(time.Minute)
	if res == nil || res.Resp.Body != "plain" {
		t.Fatalf("res = %+v", res)
	}
	if tb.Ctrl.Stats.PacketIns != 0 {
		t.Fatalf("packet-ins = %d for unregistered traffic", tb.Ctrl.Stats.PacketIns)
	}
}

func TestResNetSlowestWarmService(t *testing.T) {
	tb := New(Options{Seed: 1, EnableDocker: true})
	a, reg, _ := tb.RegisterCatalogService(catalog.ResNet)
	var warm *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		tb.Ctrl.EnsureDeployed(p, "egs-docker", a.UniqueName)
		tb.Request(p, 0, reg, catalog.ResNet, 0)
		var err error
		warm, err = tb.Request(p, 0, reg, catalog.ResNet, 0)
		if err != nil {
			t.Errorf("request: %v", err)
		}
	})
	tb.K.RunUntil(10 * time.Minute)
	if warm == nil {
		t.Fatal("no response")
	}
	// Fig. 16: ResNet requires significantly longer than the ~1ms of the
	// web servers (inference time + 83 KiB upload).
	if warm.Total < 100*time.Millisecond || warm.Total > 500*time.Millisecond {
		t.Fatalf("ResNet warm request = %v, want ~140-200ms", warm.Total)
	}
}

func TestRegisterUnknownServiceKey(t *testing.T) {
	tb := New(Options{Seed: 1, EnableDocker: true})
	if _, _, err := tb.RegisterCatalogService("Apache"); err == nil {
		t.Fatal("unknown catalog key accepted")
	}
}

func TestDialErrorsSurfaceOnTimeout(t *testing.T) {
	// A request with a timeout shorter than the deployment fails with
	// ErrTimeout instead of blocking forever.
	tb := New(Options{Seed: 1, EnableKube: true})
	_, reg, _ := tb.RegisterCatalogService(catalog.ResNet)
	var err error
	tb.K.Go("driver", func(p *sim.Proc) {
		_, err = tb.Request(p, 0, reg, catalog.ResNet, 2*time.Second)
	})
	tb.K.RunUntil(10 * time.Minute)
	if !errors.Is(err, simnet.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestFarEdgeServesWhileNearDeploys(t *testing.T) {
	// Fig. 3: the initial request goes to a running instance in a farther
	// edge; the optimal (near) edge deploys in the background and future
	// requests move there.
	sched, _ := core.NewScheduler("proximity")
	tb := New(Options{
		Seed: 1, EnableDocker: true, EnableFarEdge: true,
		Scheduler:         sched,
		SwitchIdleTimeout: 2 * time.Second,
	})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	var first, later *simnet.HTTPResult
	var firstCluster, laterCluster string
	tb.K.Go("driver", func(p *sim.Proc) {
		// The far edge already runs the service (hierarchically higher
		// clusters are more likely to have it).
		if err := tb.FarDocker.Pull(p, a); err != nil {
			t.Errorf("far pull: %v", err)
			return
		}
		tb.FarDocker.Create(p, a)
		inst, _ := tb.FarDocker.ScaleUp(p, a.UniqueName)
		for !tb.FarRuntime.List(nil)[0].Ready() {
			p.Sleep(20 * time.Millisecond)
		}
		_ = inst
		var err error
		first, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("first: %v", err)
			return
		}
		for _, e := range tb.Ctrl.Memory.Entries() {
			firstCluster = e.Instance.Cluster
		}
		p.Sleep(time.Minute) // background deploy to near edge + flow expiry
		later, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("later: %v", err)
			return
		}
		for _, e := range tb.Ctrl.Memory.Entries() {
			laterCluster = e.Instance.Cluster
		}
	})
	tb.K.RunUntil(10 * time.Minute)
	if first == nil || later == nil {
		t.Fatal("requests incomplete")
	}
	// First served without waiting: no deployment in the request path.
	if first.Total > 100*time.Millisecond {
		t.Fatalf("first (far edge) = %v, want low ms (no waiting)", first.Total)
	}
	if firstCluster != "far-docker" {
		t.Fatalf("first served by %q, want far-docker", firstCluster)
	}
	if !tb.Docker.Running(a.UniqueName) {
		t.Fatal("near edge not deployed in background")
	}
	if laterCluster != "egs-docker" {
		t.Fatalf("later served by %q, want egs-docker (optimal)", laterCluster)
	}
	// The near edge is closer: later requests are faster than the first.
	if later.Total >= first.Total {
		t.Fatalf("later (%v) not faster than far-edge first (%v)", later.Total, first.Total)
	}
}

func TestPuntRuleSurvivesFlowReinstalls(t *testing.T) {
	// Regression: controller-assigned flow cookies must never collide
	// with the switch-assigned cookies of the punt rules. With a short
	// switch idle timeout, a returning client makes the controller delete
	// and re-install its redirect pair; service B's punt rule must still
	// be intact afterwards, so B's first request triggers a deployment
	// instead of silently passing through to the cloud.
	tb := New(Options{
		Seed: 1, EnableDocker: true,
		SwitchIdleTimeout: time.Second,
		MemoryIdleTimeout: 10 * time.Minute,
	})
	aA, regA, _ := tb.RegisterCatalogService(catalog.Nginx)
	aB, regB, _ := tb.RegisterCatalogService(catalog.Asm)
	_ = aA
	tb.K.Go("driver", func(p *sim.Proc) {
		// Service A: deploy, then re-trigger memory-served reinstalls.
		if _, err := tb.Request(p, 0, regA, catalog.Nginx, 0); err != nil {
			t.Errorf("A first: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			p.Sleep(5 * time.Second) // switch flow expires; memory serves
			if _, err := tb.Request(p, 0, regA, catalog.Nginx, 0); err != nil {
				t.Errorf("A repeat %d: %v", i, err)
				return
			}
		}
		if tb.Ctrl.Stats.MemoryServed == 0 {
			t.Error("expected memory-served reinstalls")
		}
		// Service B's first request must still reach the controller.
		if _, err := tb.Request(p, 1, regB, catalog.Asm, 0); err != nil {
			t.Errorf("B first: %v", err)
			return
		}
	})
	tb.K.RunUntil(10 * time.Minute)
	if !tb.Docker.Running(aB.UniqueName) {
		t.Fatal("service B was never deployed: its punt rule was deleted by a cookie collision")
	}
	if tb.Ctrl.Stats.CloudForwards != 0 {
		t.Fatalf("cloud forwards = %d, want 0", tb.Ctrl.Stats.CloudForwards)
	}
}

func TestDeploymentFailureFallsBackToCloud(t *testing.T) {
	// A registered service whose image exists in no registry cannot be
	// deployed; the controller must degrade gracefully and forward the
	// held request to the real cloud origin, which still answers.
	tb := New(Options{Seed: 1, EnableDocker: true})
	const ghostYAML = `
spec:
  template:
    spec:
      containers:
      - name: ghost
        image: ghost/unpublished:1
        ports:
        - containerPort: 80
`
	a, reg, err := tb.RegisterService(ghostYAML, "ghost.example.com")
	if err != nil {
		t.Fatal(err)
	}
	var res *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		var rerr error
		res, rerr = tb.Clients[0].HTTPGet(p, reg.VIP, reg.Port, &simnet.HTTPRequest{}, 0)
		if rerr != nil {
			t.Errorf("request: %v", rerr)
		}
	})
	tb.K.RunUntil(5 * time.Minute)
	if res == nil || res.Resp.Status != 200 {
		t.Fatalf("res = %+v, want cloud answer", res)
	}
	if tb.Ctrl.Stats.CloudForwards == 0 {
		t.Fatal("no cloud fallback recorded")
	}
	if tb.Docker.Running(a.UniqueName) {
		t.Fatal("service running despite missing image")
	}
	// The failed attempt is recorded with its error.
	failed := 0
	for _, r := range tb.Ctrl.Records() {
		if r.Err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no failed deployment record")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// The entire testbed is deterministic per seed: two runs of the same
	// scenario produce byte-identical stats and request timings.
	run := func() (core.Stats, []time.Duration) {
		tb := New(Options{Seed: 77, EnableDocker: true, EnableKube: true,
			Scheduler: core.DockerFirstScheduler{}, SwitchIdleTimeout: 2 * time.Second})
		_, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
		var totals []time.Duration
		tb.K.Go("driver", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				hr, err := tb.Request(p, i%len(tb.Clients), reg, catalog.Nginx, 0)
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				totals = append(totals, hr.Total)
				p.Sleep(7 * time.Second)
			}
		})
		tb.K.RunUntil(10 * time.Minute)
		return tb.Ctrl.Stats, totals
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("sample counts diverged: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("timing %d diverged: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestDeletePhaseRemovesImagesAndRepullWorks(t *testing.T) {
	// Fig. 4's optional Delete phase: deleting a service's cached images
	// frees the store; the next deployment pulls again. (Layer survival
	// across distinct images sharing blobs is covered by the registry
	// tests; here both services reference the same nginx image ref, so
	// deleting one deletes it for both.)
	tb := New(Options{Seed: 1, EnableDocker: true})
	combo, _, _ := tb.RegisterCatalogService(catalog.NginxPy)
	plain, _, _ := tb.RegisterCatalogService(catalog.Nginx)
	tb.K.Go("driver", func(p *sim.Proc) {
		t0 := p.Now()
		if err := tb.Docker.Pull(p, combo); err != nil {
			t.Errorf("pull: %v", err)
			return
		}
		coldPull := p.Now() - t0
		// The plain service's image is now cached too (same ref).
		if !tb.Docker.HasImages(plain) {
			t.Error("plain nginx not cached after combo pull")
		}
		if err := tb.Ctrl.DeleteImages(p, "egs-docker", combo.UniqueName); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		if tb.Docker.HasImages(combo) || tb.Docker.HasImages(plain) {
			t.Error("images still cached after delete")
		}
		// Re-pull is a full cold pull again.
		t0 = p.Now()
		if err := tb.Docker.Pull(p, combo); err != nil {
			t.Errorf("re-pull: %v", err)
			return
		}
		rePull := p.Now() - t0
		if rePull < coldPull/2 {
			t.Errorf("re-pull (%v) suspiciously fast vs cold (%v)", rePull, coldPull)
		}
	})
	tb.K.RunUntil(30 * time.Minute)
}

func TestDeleteImagesErrors(t *testing.T) {
	tb := New(Options{Seed: 1, EnableKube: true})
	a, _, _ := tb.RegisterCatalogService(catalog.Nginx)
	tb.K.Go("driver", func(p *sim.Proc) {
		if err := tb.Ctrl.DeleteImages(p, "nope", a.UniqueName); err == nil {
			t.Error("unknown cluster accepted")
		}
		if err := tb.Ctrl.DeleteImages(p, "egs-k8s", "nope"); err == nil {
			t.Error("unknown service accepted")
		}
		// The kube cluster does not implement ImageDeleter.
		if err := tb.Ctrl.DeleteImages(p, "egs-k8s", a.UniqueName); err == nil {
			t.Error("non-deleter cluster accepted")
		}
	})
	tb.K.RunUntil(time.Minute)
}

func TestRuntimeClassPlacement(t *testing.T) {
	// §VIII side-by-side: with Docker AND the serverless platform enabled,
	// a runtimeClassName:wasm service must land on the serverless
	// platform, and a regular container service on Docker.
	tb := New(Options{Seed: 1, EnableDocker: true, EnableServerless: true})
	ctr, ctrReg, _ := tb.RegisterCatalogService(catalog.Asm)
	fn, fnReg, _ := tb.RegisterCatalogService(catalog.AsmWasm)
	if fn.RuntimeClass != "wasm" || ctr.RuntimeClass != "" {
		t.Fatalf("runtime classes = %q / %q", fn.RuntimeClass, ctr.RuntimeClass)
	}
	tb.K.Go("driver", func(p *sim.Proc) {
		if _, err := tb.Request(p, 0, fnReg, catalog.AsmWasm, 0); err != nil {
			t.Errorf("wasm request: %v", err)
			return
		}
		if _, err := tb.Request(p, 1, ctrReg, catalog.Asm, 0); err != nil {
			t.Errorf("container request: %v", err)
			return
		}
	})
	tb.K.RunUntil(5 * time.Minute)
	if !tb.Serverless.Running(fn.UniqueName) {
		t.Error("wasm service not on the serverless platform")
	}
	if tb.Docker.Running(fn.UniqueName) {
		t.Error("wasm service deployed to docker")
	}
	if !tb.Docker.Running(ctr.UniqueName) {
		t.Error("container service not on docker")
	}
	if tb.Serverless.Running(ctr.UniqueName) {
		t.Error("container service deployed to the serverless platform")
	}
	if tb.Serverless.ColdStarts != 1 {
		t.Errorf("cold starts = %d, want 1", tb.Serverless.ColdStarts)
	}
}

func TestCrashedInstanceIsRedeployedOnNextRequest(t *testing.T) {
	// Resilience: a crashed container leaves a stale FlowMemory entry and
	// stale switch flows. After the switch flow idle-expires, the next
	// request punts to the controller, the memory entry fails the
	// liveness check, and the dispatcher redeploys — the client just sees
	// one slower request.
	tb := New(Options{
		Seed: 1, EnableDocker: true,
		SwitchIdleTimeout: time.Second,
	})
	a, reg, _ := tb.RegisterCatalogService(catalog.Nginx)
	var afterCrash *simnet.HTTPResult
	tb.K.Go("driver", func(p *sim.Proc) {
		if _, err := tb.Request(p, 0, reg, catalog.Nginx, 0); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		if err := tb.Docker.KillService(a.UniqueName); err != nil {
			t.Errorf("kill: %v", err)
			return
		}
		if tb.Docker.Running(a.UniqueName) {
			t.Error("service still running after kill")
		}
		p.Sleep(5 * time.Second) // switch flow expires
		var err error
		afterCrash, err = tb.Request(p, 0, reg, catalog.Nginx, 0)
		if err != nil {
			t.Errorf("after crash: %v", err)
			return
		}
	})
	tb.K.RunUntil(10 * time.Minute)
	if afterCrash == nil {
		t.Fatal("no response after crash")
	}
	// The request triggered a fresh scale-up (sub-second on Docker).
	if afterCrash.Total < 300*time.Millisecond || afterCrash.Total > 1500*time.Millisecond {
		t.Fatalf("post-crash request = %v, want a redeployment", afterCrash.Total)
	}
	if !tb.Docker.Running(a.UniqueName) {
		t.Fatal("service not redeployed after crash")
	}
	redeploys := 0
	for _, r := range tb.Ctrl.RecordsFor("egs-docker", a.UniqueName) {
		if r.DidScaleUp {
			redeploys++
		}
	}
	if redeploys != 2 {
		t.Fatalf("scale-ups = %d, want 2 (initial + post-crash)", redeploys)
	}
}
