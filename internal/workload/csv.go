package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// MarshalCSV renders the trace as "at_ms,client,service" rows with a
// header — the interchange format of cmd/tracegen.
func (t *Trace) MarshalCSV() string {
	var b strings.Builder
	b.WriteString("at_ms,client,service\n")
	for _, r := range t.Requests {
		fmt.Fprintf(&b, "%d,%d,%d\n", r.At.Milliseconds(), r.Client, r.Service)
	}
	return b.String()
}

// ParseCSV reads a trace in the MarshalCSV format. This is the bridge for
// replaying externally captured workloads: the paper derives its trace from
// bigFlows.pcap by extracting TCP conversations to public port-80
// addresses; exporting those conversations as (time, client, service) rows
// lets this simulator replay the exact capture instead of the synthetic
// equivalent. Service and client indices are compacted; the window and
// counts are derived from the data.
func ParseCSV(src string) (*Trace, error) {
	lines := strings.Split(strings.TrimSpace(src), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	start := 0
	if strings.HasPrefix(strings.ToLower(lines[0]), "at_ms") {
		start = 1
	}
	var reqs []Request
	clients := map[int]int{}
	services := map[int]int{}
	var maxAt time.Duration
	for i := start; i < len(lines); i++ {
		ln := strings.TrimSpace(lines[i])
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		parts := strings.Split(ln, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: line %d: want 3 fields, got %d", i+1, len(parts))
		}
		atMS, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil || atMS < 0 {
			return nil, fmt.Errorf("workload: line %d: bad timestamp %q", i+1, parts[0])
		}
		cli, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || cli < 0 {
			return nil, fmt.Errorf("workload: line %d: bad client %q", i+1, parts[1])
		}
		svc, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || svc < 0 {
			return nil, fmt.Errorf("workload: line %d: bad service %q", i+1, parts[2])
		}
		if _, ok := clients[cli]; !ok {
			clients[cli] = len(clients)
		}
		if _, ok := services[svc]; !ok {
			services[svc] = len(services)
		}
		at := time.Duration(atMS) * time.Millisecond
		if at > maxAt {
			maxAt = at
		}
		reqs = append(reqs, Request{At: at, Client: clients[cli], Service: services[svc]})
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("workload: no requests in trace")
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].At != reqs[j].At {
			return reqs[i].At < reqs[j].At
		}
		if reqs[i].Service != reqs[j].Service {
			return reqs[i].Service < reqs[j].Service
		}
		return reqs[i].Client < reqs[j].Client
	})
	// Per-service minimum for the derived config (informational).
	counts := map[int]int{}
	for _, r := range reqs {
		counts[r.Service]++
	}
	min := len(reqs)
	for _, c := range counts {
		if c < min {
			min = c
		}
	}
	return &Trace{
		Config: Config{
			Services:      len(services),
			TotalRequests: len(reqs),
			MinPerService: min,
			Duration:      maxAt + time.Second,
			Clients:       len(clients),
		},
		Requests: reqs,
	}, nil
}
