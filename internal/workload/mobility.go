package workload

import (
	"math"
	"sort"
	"time"
)

// MobilityConfig parameterizes the handover-event generator: a per-client
// dwell model in the spirit of Fondo-Ferreiro et al.'s VM-migration
// evaluation — each UE camps on a cell for an exponentially distributed
// dwell time (mean MeanDwell, floored at MinDwell, i.e. a shifted
// exponential), then hands over to one of the other cells uniformly at
// random. MeanDwell is the single knob the mobility sweep turns: halving it
// doubles the handover rate.
type MobilityConfig struct {
	Seed     int64
	Clients  int
	Cells    int           // attachment points available to each client (gNBs)
	Duration time.Duration // schedule window (matches the trace window)
	// MeanDwell is the mean time a client stays attached between handovers;
	// MinDwell floors each dwell (a UE cannot ping-pong instantaneously).
	MeanDwell time.Duration
	MinDwell  time.Duration
}

// DefaultMobilityConfig matches the default trace shape (20 clients over
// five minutes) with two cells and a 45s mean dwell — about six handovers
// per client over the window.
func DefaultMobilityConfig(seed int64) MobilityConfig {
	return MobilityConfig{
		Seed:      seed,
		Clients:   20,
		Cells:     2,
		Duration:  5 * time.Minute,
		MeanDwell: 45 * time.Second,
		MinDwell:  2 * time.Second,
	}
}

// Handover is one scheduled re-attachment: at offset At from the replay
// anchor, Client moves from cell From to cell To. Cells are per-client
// indices; the testbed maps (client, cell) to a concrete gNB switch.
type Handover struct {
	At     time.Duration
	Client int
	From   int
	To     int
}

// StartCell returns the cell a client occupies at t=0 — the attachment the
// testbed establishes before replay, and the From of the client's first
// handover: client i starts at cell i % cells.
func StartCell(client, cells int) int {
	if cells <= 0 {
		return 0
	}
	return client % cells
}

// GenerateHandovers synthesizes the mobility schedule, sorted by time. Every
// draw is a counted splitmix64 hash keyed (seed, client, step) — independent
// of the kernel RNG and of any other generator, so the same config yields
// the same schedule regardless of what else a run draws (the property the
// sharded fingerprint-parity experiments rely on).
func GenerateHandovers(cfg MobilityConfig) []Handover {
	if cfg.Clients <= 0 || cfg.Cells < 2 || cfg.Duration <= 0 {
		return nil
	}
	mean := cfg.MeanDwell
	if mean <= 0 {
		mean = 45 * time.Second
	}
	min := cfg.MinDwell
	if min < 0 {
		min = 0
	}
	var out []Handover
	for c := 0; c < cfg.Clients; c++ {
		cell := StartCell(c, cfg.Cells)
		t := time.Duration(0)
		for step := uint64(0); ; step++ {
			// Shifted-exponential dwell via inverse CDF; u < 1 always, so
			// the log argument stays in (0, 1].
			u := mobUnit(cfg.Seed, uint64(c), step, 0)
			t += min + time.Duration(-math.Log(1-u)*float64(mean))
			if t >= cfg.Duration {
				break
			}
			// Next cell uniform over the others (never a self-handover).
			to := int(mobMix(cfg.Seed, uint64(c), step, 1) % uint64(cfg.Cells-1))
			if to >= cell {
				to++
			}
			out = append(out, Handover{At: t, Client: c, From: cell, To: to})
			cell = to
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Client < out[j].Client
	})
	return out
}

// mobMix maps (seed, client, step, salt) to a uniform uint64 with a
// splitmix64-style finalizer (the faults package's counted-draw idiom).
func mobMix(seed int64, client, step, salt uint64) uint64 {
	x := uint64(seed)
	x ^= (client + 1) * 0x9E3779B97F4A7C15
	x ^= (step + 1) * 0xBF58476D1CE4E5B9
	x ^= (salt + 1) * 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// mobUnit maps the same key to [0, 1).
func mobUnit(seed int64, client, step, salt uint64) float64 {
	return float64(mobMix(seed, client, step, salt)>>11) / (1 << 53)
}
