package workload

import (
	"testing"
	"time"
)

func TestGenerateHandoversDeterministic(t *testing.T) {
	cfg := DefaultMobilityConfig(42)
	a := GenerateHandovers(cfg)
	b := GenerateHandovers(cfg)
	if len(a) == 0 {
		t.Fatal("no handovers generated")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("handover %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := GenerateHandovers(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced the identical schedule")
	}
}

func TestGenerateHandoversShape(t *testing.T) {
	cfg := MobilityConfig{
		Seed: 7, Clients: 10, Cells: 3,
		Duration:  2 * time.Minute,
		MeanDwell: 10 * time.Second,
		MinDwell:  2 * time.Second,
	}
	hs := GenerateHandovers(cfg)
	if len(hs) == 0 {
		t.Fatal("no handovers generated")
	}
	cell := make(map[int]int, cfg.Clients)
	last := make(map[int]time.Duration, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		cell[c] = StartCell(c, cfg.Cells)
	}
	for i, h := range hs {
		if i > 0 && (h.At < hs[i-1].At || (h.At == hs[i-1].At && h.Client < hs[i-1].Client)) {
			t.Fatalf("schedule not sorted at %d: %+v after %+v", i, h, hs[i-1])
		}
		if h.At < 0 || h.At >= cfg.Duration {
			t.Errorf("handover outside the window: %+v", h)
		}
		if h.From == h.To {
			t.Errorf("self-handover: %+v", h)
		}
		if h.From != cell[h.Client] {
			t.Errorf("handover %d: From = %d, client is at %d", i, h.From, cell[h.Client])
		}
		if h.To < 0 || h.To >= cfg.Cells {
			t.Errorf("handover to cell %d outside [0,%d)", h.To, cfg.Cells)
		}
		if gap := h.At - last[h.Client]; gap < cfg.MinDwell {
			t.Errorf("client %d dwell %v below the %v floor", h.Client, gap, cfg.MinDwell)
		}
		cell[h.Client] = h.To
		last[h.Client] = h.At
	}
}

func TestGenerateHandoversEdgeCases(t *testing.T) {
	base := MobilityConfig{
		Seed: 1, Clients: 4, Cells: 2,
		Duration: time.Minute, MeanDwell: 10 * time.Second,
	}
	for name, mutate := range map[string]func(*MobilityConfig){
		"no clients":  func(c *MobilityConfig) { c.Clients = 0 },
		"single cell": func(c *MobilityConfig) { c.Cells = 1 },
		"no window":   func(c *MobilityConfig) { c.Duration = 0 },
	} {
		cfg := base
		mutate(&cfg)
		if hs := GenerateHandovers(cfg); hs != nil {
			t.Errorf("%s: generated %d handovers, want none", name, len(hs))
		}
	}
	// Faster handover rates produce strictly more events.
	slow := GenerateHandovers(base)
	fast := base
	fast.MeanDwell = 2 * time.Second
	if got := GenerateHandovers(fast); len(got) <= len(slow) {
		t.Errorf("dwell 2s produced %d handovers vs %d at 10s, want more", len(got), len(slow))
	}
}
