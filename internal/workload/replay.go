package workload

import (
	"fmt"
	"time"

	"transparentedge/internal/metrics"
	"transparentedge/internal/obs"
	"transparentedge/internal/sim"
	"transparentedge/internal/simnet"
	"transparentedge/internal/spec"
	"transparentedge/internal/testbed"
)

// DefaultExactSamples is the per-series sample count above which Replay
// switches the totals series to fixed-memory histogram mode. Below it,
// every sample is retained and quantiles are exact — the paper-scale trace
// (1708 requests) stays far under this, so its results are bit-identical to
// the unbounded series.
const DefaultExactSamples = 65536

// ReplayResult aggregates one trace replay.
type ReplayResult struct {
	// Totals holds every request's client-measured total time (timecurl's
	// time_total), stamped at the request's arrival time. Above the exact
	// sample threshold it degrades to a log-bucketed histogram (see
	// Options.ExactSamples).
	Totals *metrics.Series
	// FirstRequests holds only each service's first request (the
	// on-demand deployment requests of figs. 11/12).
	FirstRequests *metrics.Series
	// Errors counts failed requests.
	Errors int
	// Registrations are the per-service registrations used.
	Registrations []spec.Registration
}

// Options configures a replay run beyond the trace itself.
type Options struct {
	// PrePull / PreCreate run the fig. 11 warm conditions before t=0.
	PrePull   bool
	PreCreate bool
	// GoroutinePerRequest selects the legacy strategy that spawns one
	// parked process per request up front. The default (false) schedules
	// arrivals as kernel events and spawns each request's process lazily at
	// its arrival time, keeping memory flat in trace length. Both
	// strategies produce identical results at the same seed.
	GoroutinePerRequest bool
	// MaxInFlight bounds concurrently executing requests in event-driven
	// mode (0 = unlimited). Arrivals beyond the cap queue FIFO and start as
	// running requests finish; their measured latency still spans arrival
	// to completion, so queueing shows up in the totals.
	MaxInFlight int
	// ExactSamples is the per-series sample threshold beyond which result
	// series fold into fixed-memory histograms. 0 means
	// DefaultExactSamples; negative means never fold (retain every sample).
	ExactSamples int
	// RequestTimeout bounds each request (0 = wait forever, the paper's
	// on-demand-with-waiting behavior). Timed-out requests count as errors.
	RequestTimeout time.Duration
	// Trace, when set, emits one "request" root span per replayed request
	// (arrival to completion, Err on failure) — so a replay's span count for
	// that name equals the request count. Nil = off at zero cost.
	Trace *obs.Tracer
	// Counters, when set, registers replay_inflight (gauge, with high-water
	// mark) and replay_errors_total. Nil = off at zero cost.
	Counters *obs.Registry
	// Handovers is a mobility schedule replayed alongside the trace: each
	// event fires at the replay anchor plus its At, on its own monotone
	// event lane (it never perturbs the arrival lane), invoking
	// ApplyHandover. Ignored when ApplyHandover is nil.
	Handovers []Handover
	// ApplyHandover performs one re-attachment (simnet MoveTo, switch
	// rewiring, controller NoteHandover — see testbed.Handover). It runs in
	// kernel context and must not block; in sharded runs it is invoked on
	// the home region's kernel and must touch only that region's state.
	ApplyHandover func(h Handover)
}

// replayObs bundles the replay layer's resolved obs handles; the zero value
// (obs off) no-ops everywhere, so both replay strategies instrument
// unconditionally.
type replayObs struct {
	tr   *obs.Tracer
	in   *obs.Gauge
	errs *obs.Counter
}

func newReplayObs(opts Options) replayObs {
	o := replayObs{tr: opts.Trace}
	if reg := opts.Counters; reg != nil {
		o.in = reg.Gauge("replay_inflight")
		o.errs = reg.Counter("replay_errors_total")
	}
	return o
}

// request emits the per-request root span and accounting around one
// replayed request's execution.
func (o replayObs) request(at, end sim.Time, serviceKey string, err error) {
	if err != nil {
		o.errs.Inc()
	}
	if o.tr == nil {
		return
	}
	s := obs.Span{Name: "request", Cat: "request", Detail: serviceKey,
		Start: time.Duration(at), End: time.Duration(end)}
	if err != nil {
		s.Err = err.Error()
	}
	o.tr.Emit(s)
}

// Replay registers trace.Config.Services instances of the given Table I
// service type (the paper uses "a single service type per test run"),
// optionally pre-pulls and pre-creates them (the fig. 11 warm conditions),
// then replays the trace: every request is issued from its client at its
// arrival time and measured end to end. It is shorthand for ReplayWith with
// the default event-driven options.
func Replay(tb *testbed.Testbed, trace *Trace, serviceKey string, prePull, preCreate bool) (*ReplayResult, error) {
	return ReplayWith(tb, trace, serviceKey, Options{PrePull: prePull, PreCreate: preCreate})
}

// ReplayWith replays a trace with explicit options. The testbed kernel is
// run to completion inside the call.
func ReplayWith(tb *testbed.Testbed, trace *Trace, serviceKey string, opts Options) (*ReplayResult, error) {
	if len(tb.Clients) == 0 {
		return nil, fmt.Errorf("workload: testbed has no clients")
	}
	if trace == nil || trace.Config.Services <= 0 {
		return nil, fmt.Errorf("workload: trace has no services")
	}
	for i, r := range trace.Requests {
		if r.Service < 0 || r.Service >= trace.Config.Services {
			return nil, fmt.Errorf("workload: request %d references service %d outside [0,%d)",
				i, r.Service, trace.Config.Services)
		}
		if r.Client < 0 {
			return nil, fmt.Errorf("workload: request %d has negative client %d", i, r.Client)
		}
	}

	exact := opts.ExactSamples
	if exact == 0 {
		exact = DefaultExactSamples
	}
	newSeries := func(name string) *metrics.Series {
		if exact < 0 {
			return metrics.NewSeries(name)
		}
		return metrics.NewBoundedSeries(name, exact)
	}
	res := &ReplayResult{
		Totals:        newSeries(serviceKey + "/totals"),
		FirstRequests: newSeries(serviceKey + "/first"),
	}
	regs := make([]spec.Registration, trace.Config.Services)
	annotated := make([]*spec.Annotated, trace.Config.Services)
	for i := 0; i < trace.Config.Services; i++ {
		a, reg, err := tb.RegisterCatalogService(serviceKey)
		if err != nil {
			return nil, err
		}
		regs[i] = reg
		annotated[i] = a
	}
	res.Registrations = regs

	// Preparation (pre-pull/pre-create) runs first; the trace's t=0 is
	// then anchored at preparation end so arrival spacing is preserved.
	prepDone := sim.NewPromise[sim.Time](tb.K)
	tb.K.Go("prepare", func(p *sim.Proc) {
		defer func() { prepDone.Resolve(p.Now()) }()
		if !opts.PrePull && !opts.PreCreate {
			return
		}
		for _, cl := range tb.Ctrl.Clusters() {
			for _, a := range annotated {
				if err := cl.Pull(p, a); err != nil {
					res.Errors++
					return
				}
				if opts.PreCreate {
					if err := cl.Create(p, a); err != nil {
						res.Errors++
						return
					}
				}
			}
		}
	})

	stageHandovers(tb.K, opts, prepDone, nil)

	ro := newReplayObs(opts)
	if opts.GoroutinePerRequest {
		replayGoroutines(tb, trace, res, regs, serviceKey, opts, prepDone, ro)
	} else {
		replayEvents(tb, trace, res, regs, serviceKey, opts, prepDone, ro)
	}

	// Run until all requests completed (generous bound: trace duration
	// plus slack for trailing deployments).
	tb.K.RunUntil(trace.Config.Duration + 30*time.Minute)
	return res, nil
}

// stageHandovers schedules the mobility lane: once preparation resolves, the
// whole handover schedule is staged as one monotone event batch anchored at
// the same t0 as the arrivals. keep filters the schedule (nil = all) — the
// sharded replay passes a region predicate. Staged before the arrival lane
// so a handover and an arrival at the same instant order handover-first at
// every shard count.
func stageHandovers(k *sim.Kernel, opts Options, prepDone *sim.Promise[sim.Time], keep func(h Handover) bool) {
	if len(opts.Handovers) == 0 || opts.ApplyHandover == nil {
		return
	}
	hs := opts.Handovers
	if keep != nil {
		hs = nil
		for _, h := range opts.Handovers {
			if keep(h) {
				hs = append(hs, h)
			}
		}
		if len(hs) == 0 {
			return
		}
	}
	apply := opts.ApplyHandover
	prepDone.OnDone(func(t0 sim.Time, _ error) {
		times := make([]sim.Time, len(hs))
		for i, h := range hs {
			times[i] = t0 + h.At
		}
		k.AtBatch(times, func(i int) { apply(hs[i]) })
	})
}

// replayGoroutines is the legacy strategy: one process per request, spawned
// up front and parked until its arrival time. O(trace) goroutines and parked
// stacks — kept behind Options.GoroutinePerRequest for parity checking. The
// request itself runs on the same callback core as the event strategy (the
// process just awaits its completion), so the two stay bit-identical.
func replayGoroutines(tb *testbed.Testbed, trace *Trace, res *ReplayResult,
	regs []spec.Registration, serviceKey string, opts Options, prepDone *sim.Promise[sim.Time], ro replayObs) {
	firstSeen := make(map[int]bool, trace.Config.Services)
	for _, r := range trace.Requests {
		r := r
		isFirst := !firstSeen[r.Service]
		firstSeen[r.Service] = true
		tb.K.Go("replay", func(p *sim.Proc) {
			// Wait for preparation, then until this request's arrival
			// relative to the anchored trace start.
			t0, _ := prepDone.Await(p)
			p.SleepUntil(t0 + r.At)
			at := p.Now()
			ro.in.Add(1)
			pr := sim.NewPromise[*simnet.HTTPResult](tb.K)
			tb.RequestAsync(r.Client%len(tb.Clients), regs[r.Service], serviceKey, opts.RequestTimeout,
				func(hr *simnet.HTTPResult, err error) {
					if err != nil {
						pr.Fail(err)
						return
					}
					pr.Resolve(hr)
				})
			hr, err := pr.Await(p)
			ro.in.Add(-1)
			ro.request(at, p.Now(), serviceKey, err)
			if err != nil {
				res.Errors++
				return
			}
			res.Totals.Add(at, hr.Total)
			if isFirst {
				res.FirstRequests.Add(at, hr.Total)
			}
		})
	}
}

// replayEvents is the event-driven strategy: once preparation resolves, the
// whole arrival schedule is staged as a monotone event batch (O(n), no
// heap churn) and each request runs on the callback-mode request core — no
// process, channel, or promise per request — so peak memory tracks in-flight
// requests and the steady-state request path stays under ten allocations.
func replayEvents(tb *testbed.Testbed, trace *Trace, res *ReplayResult,
	regs []spec.Registration, serviceKey string, opts Options, prepDone *sim.Promise[sim.Time], ro replayObs) {
	firstSeen := make(map[int]bool, trace.Config.Services)
	isFirst := make([]bool, len(trace.Requests))
	for i, r := range trace.Requests {
		isFirst[i] = !firstSeen[r.Service]
		firstSeen[r.Service] = true
	}

	inFlight := 0
	var queued []int // arrival-order indices waiting on the in-flight cap
	var start func(i int, at sim.Time)
	start = func(i int, at sim.Time) {
		inFlight++
		ro.in.Add(1)
		r := trace.Requests[i]
		tb.RequestAsync(r.Client%len(tb.Clients), regs[r.Service], serviceKey, opts.RequestTimeout,
			func(hr *simnet.HTTPResult, err error) {
				inFlight--
				ro.in.Add(-1)
				ro.request(at, tb.K.Now(), serviceKey, err)
				if err != nil {
					res.Errors++
				} else {
					res.Totals.Add(at, hr.Total)
					if isFirst[i] {
						res.FirstRequests.Add(at, hr.Total)
					}
				}
				if len(queued) > 0 && (opts.MaxInFlight <= 0 || inFlight < opts.MaxInFlight) {
					next := queued[0]
					queued = queued[1:]
					start(next, tb.K.Now())
				}
			})
	}

	prepDone.OnDone(func(t0 sim.Time, _ error) {
		times := make([]sim.Time, len(trace.Requests))
		for i, r := range trace.Requests {
			times[i] = t0 + r.At
		}
		tb.K.AtBatch(times, func(i int) {
			if opts.MaxInFlight > 0 && inFlight >= opts.MaxInFlight {
				queued = append(queued, i)
				return
			}
			start(i, tb.K.Now())
		})
	})
}
