package workload

import (
	"time"

	"transparentedge/internal/metrics"
	"transparentedge/internal/sim"
	"transparentedge/internal/spec"
	"transparentedge/internal/testbed"
)

// ReplayResult aggregates one trace replay.
type ReplayResult struct {
	// Totals holds every request's client-measured total time (timecurl's
	// time_total), stamped at the request's arrival time.
	Totals *metrics.Series
	// FirstRequests holds only each service's first request (the
	// on-demand deployment requests of figs. 11/12).
	FirstRequests *metrics.Series
	// Errors counts failed requests.
	Errors int
	// Registrations are the per-service registrations used.
	Registrations []spec.Registration
}

// Replay registers trace.Config.Services instances of the given Table I
// service type (the paper uses "a single service type per test run"),
// optionally pre-pulls and pre-creates them (the fig. 11 warm conditions),
// then replays the trace: every request is issued from its client at its
// arrival time and measured end to end.
//
// The testbed kernel is run to completion inside Replay.
func Replay(tb *testbed.Testbed, trace *Trace, serviceKey string, prePull, preCreate bool) (*ReplayResult, error) {
	res := &ReplayResult{
		Totals:        metrics.NewSeries(serviceKey + "/totals"),
		FirstRequests: metrics.NewSeries(serviceKey + "/first"),
	}
	regs := make([]spec.Registration, trace.Config.Services)
	annotated := make([]*spec.Annotated, trace.Config.Services)
	for i := 0; i < trace.Config.Services; i++ {
		a, reg, err := tb.RegisterCatalogService(serviceKey)
		if err != nil {
			return nil, err
		}
		regs[i] = reg
		annotated[i] = a
	}
	res.Registrations = regs

	// Preparation (pre-pull/pre-create) runs first; the trace's t=0 is
	// then anchored at preparation end so arrival spacing is preserved.
	prepDone := sim.NewPromise[sim.Time](tb.K)
	tb.K.Go("prepare", func(p *sim.Proc) {
		defer func() { prepDone.Resolve(p.Now()) }()
		if !prePull && !preCreate {
			return
		}
		for _, cl := range tb.Ctrl.Clusters() {
			for _, a := range annotated {
				if err := cl.Pull(p, a); err != nil {
					res.Errors++
					return
				}
				if preCreate {
					if err := cl.Create(p, a); err != nil {
						res.Errors++
						return
					}
				}
			}
		}
	})

	firstSeen := make(map[int]bool, trace.Config.Services)
	for _, r := range trace.Requests {
		r := r
		isFirst := !firstSeen[r.Service]
		firstSeen[r.Service] = true
		tb.K.Go("replay", func(p *sim.Proc) {
			// Wait for preparation, then until this request's arrival
			// relative to the anchored trace start.
			t0, _ := prepDone.Await(p)
			p.SleepUntil(t0 + r.At)
			at := p.Now()
			hr, err := tb.Request(p, r.Client%len(tb.Clients), regs[r.Service], serviceKey, 0)
			if err != nil {
				res.Errors++
				return
			}
			res.Totals.Add(at, hr.Total)
			if isFirst {
				res.FirstRequests.Add(at, hr.Total)
			}
		})
	}
	// Run until all requests completed (generous bound: trace duration
	// plus slack for trailing deployments).
	tb.K.RunUntil(trace.Config.Duration + 30*time.Minute)
	return res, nil
}
