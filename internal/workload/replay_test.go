package workload

import (
	"sort"
	"testing"
	"time"

	"transparentedge/internal/catalog"
	"transparentedge/internal/metrics"
	"transparentedge/internal/testbed"
)

func newReplayTestbed(seed int64, clients int) *testbed.Testbed {
	return testbed.New(testbed.Options{Seed: seed, EnableDocker: true, NumClients: clients})
}

// TestReplayParityFig9 is the acceptance gate for the event-driven replay:
// on the full fig. 9 trace at the same seed, the event-driven and
// goroutine-per-request strategies must produce bit-identical results.
func TestReplayParityFig9(t *testing.T) {
	trace := Generate(DefaultConfig(42))

	run := func(goroutines bool) *ReplayResult {
		tb := newReplayTestbed(42, 20)
		res, err := ReplayWith(tb, trace, catalog.Nginx, Options{
			PrePull: true, PreCreate: true, GoroutinePerRequest: goroutines,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ev := run(false)
	gr := run(true)

	if ev.Errors != gr.Errors {
		t.Errorf("Errors: event %d, goroutine %d", ev.Errors, gr.Errors)
	}
	if ev.Totals.Len() != gr.Totals.Len() {
		t.Errorf("Totals.Len: event %d, goroutine %d", ev.Totals.Len(), gr.Totals.Len())
	}
	if ev.FirstRequests.Len() != gr.FirstRequests.Len() {
		t.Errorf("FirstRequests.Len: event %d, goroutine %d",
			ev.FirstRequests.Len(), gr.FirstRequests.Len())
	}
	for _, p := range []float64{50, 95, 99} {
		if e, g := ev.Totals.Percentile(p), gr.Totals.Percentile(p); e != g {
			t.Errorf("Totals P%v: event %v, goroutine %v", p, e, g)
		}
	}
	if e, g := ev.FirstRequests.Median(), gr.FirstRequests.Median(); e != g {
		t.Errorf("FirstRequests median: event %v, goroutine %v", e, g)
	}
	// Strongest form: the per-request (arrival, total) sample multisets are
	// bit-identical. Insertion order is compared after sorting because two
	// requests can complete at the exact same simulation instant, and the
	// tie then breaks on event sequence numbers, which legitimately differ
	// between the two scheduling strategies.
	es, gs := sortedSamples(ev.Totals), sortedSamples(gr.Totals)
	if len(es) != len(gs) {
		t.Fatalf("sample counts differ: %d vs %d", len(es), len(gs))
	}
	for i := range es {
		if es[i] != gs[i] {
			t.Fatalf("sample %d differs: event %+v, goroutine %+v", i, es[i], gs[i])
		}
	}
}

func sortedSamples(s *metrics.Series) []metrics.Sample {
	out := s.Samples()
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func TestReplayGuardNoClients(t *testing.T) {
	tb := newReplayTestbed(1, 5)
	tb.Clients = nil
	trace := Generate(Config{Seed: 1, Services: 2, TotalRequests: 4,
		MinPerService: 2, Duration: time.Second, Clients: 2})
	if _, err := Replay(tb, trace, catalog.Nginx, false, false); err == nil {
		t.Fatal("Replay with no clients did not error")
	}
}

func TestReplayGuardZeroServices(t *testing.T) {
	tb := newReplayTestbed(1, 5)
	if _, err := Replay(tb, &Trace{}, catalog.Nginx, false, false); err == nil {
		t.Fatal("Replay with zero-service trace did not error")
	}
	if _, err := Replay(tb, nil, catalog.Nginx, false, false); err == nil {
		t.Fatal("Replay with nil trace did not error")
	}
}

func TestReplayGuardOutOfRangeRequests(t *testing.T) {
	tb := newReplayTestbed(1, 5)
	bad := &Trace{
		Config:   Config{Services: 1, TotalRequests: 1, Duration: time.Second, Clients: 1},
		Requests: []Request{{At: 0, Client: 0, Service: 5}},
	}
	if _, err := Replay(tb, bad, catalog.Nginx, false, false); err == nil {
		t.Fatal("out-of-range service did not error")
	}
	bad.Requests[0] = Request{At: 0, Client: -1, Service: 0}
	if _, err := Replay(tb, bad, catalog.Nginx, false, false); err == nil {
		t.Fatal("negative client did not error")
	}
}

// TestReplayErrorAccountingPrepFailure: a failed pre-pull increments Errors
// exactly once and aborts preparation; the replay itself still proceeds
// (requests are served by cloud forwarding while edge deployment is broken).
func TestReplayErrorAccountingPrepFailure(t *testing.T) {
	cfg := Config{Seed: 1, Services: 2, TotalRequests: 8, MinPerService: 4,
		Duration: 10 * time.Second, Clients: 5}
	trace := Generate(cfg)
	tb := newReplayTestbed(1, 5)
	// Unpublish the image so the pre-pull manifest request 404s.
	tb.Hub.Remove(catalog.ImgNginx)
	res, err := ReplayWith(tb, trace, catalog.Nginx, Options{PrePull: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 1 {
		t.Fatalf("Errors = %d, want exactly 1 (the failed pre-pull)", res.Errors)
	}
	if res.Totals.Len() != cfg.TotalRequests {
		t.Fatalf("Totals.Len = %d, want %d (requests served from the cloud)",
			res.Totals.Len(), cfg.TotalRequests)
	}
}

// TestReplayErrorAccountingRequestFailure: each timed-out request increments
// Errors exactly once and adds no sample.
func TestReplayErrorAccountingRequestFailure(t *testing.T) {
	cfg := Config{Seed: 1, Services: 2, TotalRequests: 8, MinPerService: 4,
		Duration: 10 * time.Second, Clients: 5}
	trace := Generate(cfg)
	for _, goroutines := range []bool{false, true} {
		tb := newReplayTestbed(1, 5)
		res, err := ReplayWith(tb, trace, catalog.Nginx, Options{
			GoroutinePerRequest: goroutines,
			RequestTimeout:      time.Microsecond, // shorter than any RTT
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != cfg.TotalRequests {
			t.Errorf("goroutines=%v: Errors = %d, want %d",
				goroutines, res.Errors, cfg.TotalRequests)
		}
		if res.Totals.Len() != 0 {
			t.Errorf("goroutines=%v: Totals.Len = %d, want 0", goroutines, res.Totals.Len())
		}
	}
}

func TestReplayMaxInFlight(t *testing.T) {
	cfg := Config{Seed: 2, Services: 3, TotalRequests: 30, MinPerService: 5,
		Duration: 20 * time.Second, Clients: 5}
	trace := Generate(cfg)
	tb := newReplayTestbed(2, 5)
	res, err := ReplayWith(tb, trace, catalog.Nginx, Options{
		PrePull: true, PreCreate: true, MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("Errors = %d", res.Errors)
	}
	if res.Totals.Len() != cfg.TotalRequests {
		t.Fatalf("Totals.Len = %d, want %d — queued arrivals lost?",
			res.Totals.Len(), cfg.TotalRequests)
	}
	if res.FirstRequests.Len() != cfg.Services {
		t.Fatalf("FirstRequests.Len = %d, want %d", res.FirstRequests.Len(), cfg.Services)
	}
	// With cap 1 a queued request's measured total includes its queueing
	// delay, so no sample can undercut the uncontended fast path: every
	// total must stay above the bare client->EGS round trip.
	if res.Totals.Min() <= 0 {
		t.Fatalf("Totals.Min = %v", res.Totals.Min())
	}
}

func TestReplayHistogramModeAboveThreshold(t *testing.T) {
	cfg := Config{Seed: 3, Services: 2, TotalRequests: 40, MinPerService: 5,
		Duration: 20 * time.Second, Clients: 5}
	trace := Generate(cfg)
	tb := newReplayTestbed(3, 5)
	res, err := ReplayWith(tb, trace, catalog.Nginx, Options{
		PrePull: true, PreCreate: true, ExactSamples: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Exact() {
		t.Fatal("Totals did not fold into histogram mode above the threshold")
	}
	if res.Totals.Len() != cfg.TotalRequests {
		t.Fatalf("Totals.Len = %d, want %d", res.Totals.Len(), cfg.TotalRequests)
	}
	if res.Totals.Median() <= 0 {
		t.Fatalf("Median = %v, want > 0", res.Totals.Median())
	}
}
