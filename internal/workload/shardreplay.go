package workload

import (
	"fmt"
	"time"

	"transparentedge/internal/metrics"
	"transparentedge/internal/sim"
	"transparentedge/internal/spec"
	"transparentedge/internal/testbed"
)

// ShardReplayResult aggregates one sharded trace replay.
type ShardReplayResult struct {
	// PerRegion holds each site's replay result, indexed by region. Every
	// per-region series is accumulated on that region's kernel only, so
	// window workers never share a sink; scenario totals are merged from
	// them in region order (deterministic at every shard count).
	PerRegion []*ReplayResult
	// Totals is the merged client-measured total-time histogram.
	Totals *metrics.Hist
	// Errors counts failed requests across all regions.
	Errors int
	// Deployments counts first-requests (= on-demand deployments) across
	// all regions.
	Deployments int
}

// ReplaySharded replays a trace against a sharded multi-region scenario.
// Requests partition by client: client c lives in region c % R, and each
// region registers its own instances of the trace's services — every site
// deploys on demand for its own clients (the paper's single-site scenario,
// tiled). Preparation (pre-pull/pre-create) runs per region and each
// region's arrival schedule anchors at its own preparation end, mirroring
// the serial ReplayWith semantics per site.
//
// opts.Trace and opts.Counters are ignored: sharded runs instrument through
// the per-region handles built into rs (testbed.RegionOptions.Traced /
// Counted), because a shared tracer or registry would be written by
// concurrent window workers.
func ReplaySharded(rs *testbed.Regions, trace *Trace, serviceKey string, opts Options) (*ShardReplayResult, error) {
	if len(rs.Sites) == 0 {
		return nil, fmt.Errorf("workload: region set has no sites")
	}
	if trace == nil || trace.Config.Services <= 0 {
		return nil, fmt.Errorf("workload: trace has no services")
	}
	for i, r := range trace.Requests {
		if r.Service < 0 || r.Service >= trace.Config.Services {
			return nil, fmt.Errorf("workload: request %d references service %d outside [0,%d)",
				i, r.Service, trace.Config.Services)
		}
		if r.Client < 0 {
			return nil, fmt.Errorf("workload: request %d has negative client %d", i, r.Client)
		}
	}
	regions := len(rs.Sites)
	exact := opts.ExactSamples
	if exact == 0 {
		exact = DefaultExactSamples
	}
	newSeries := func(name string) *metrics.Series {
		if exact < 0 {
			return metrics.NewSeries(name)
		}
		return metrics.NewBoundedSeries(name, exact)
	}

	// Partition requests by home region, preserving trace order.
	perRegion := make([][]Request, regions)
	for _, r := range trace.Requests {
		d := r.Client % regions
		perRegion[d] = append(perRegion[d], r)
	}

	res := &ShardReplayResult{PerRegion: make([]*ReplayResult, regions)}
	for d := 0; d < regions; d++ {
		d := d
		site := rs.Sites[d]
		rres := &ReplayResult{
			Totals:        newSeries(fmt.Sprintf("%s/r%d/totals", serviceKey, d)),
			FirstRequests: newSeries(fmt.Sprintf("%s/r%d/first", serviceKey, d)),
		}
		res.PerRegion[d] = rres

		regs := make([]spec.Registration, trace.Config.Services)
		annotated := make([]*spec.Annotated, trace.Config.Services)
		for i := 0; i < trace.Config.Services; i++ {
			a, reg, err := rs.RegisterCatalogService(d, serviceKey)
			if err != nil {
				return nil, err
			}
			regs[i] = reg
			annotated[i] = a
		}
		rres.Registrations = regs

		k := rs.Group.Kernel(site.Domain)
		prepDone := sim.NewPromise[sim.Time](k)
		k.Go("prepare", func(p *sim.Proc) {
			defer func() { prepDone.Resolve(p.Now()) }()
			if !opts.PrePull && !opts.PreCreate {
				return
			}
			for _, cl := range site.Ctrl.Clusters() {
				for _, a := range annotated {
					if err := cl.Pull(p, a); err != nil {
						rres.Errors++
						return
					}
					if opts.PreCreate {
						if err := cl.Create(p, a); err != nil {
							rres.Errors++
							return
						}
					}
				}
			}
		})

		stageHandovers(k, opts, prepDone, func(h Handover) bool { return h.Client%regions == d })

		ro := replayObs{tr: site.Trace}
		if site.Counters != nil {
			ro.in = site.Counters.Gauge("replay_inflight")
			ro.errs = site.Counters.Counter("replay_errors_total")
		}
		reqs := perRegion[d]
		firstSeen := make(map[int]bool, trace.Config.Services)
		isFirst := make([]bool, len(reqs))
		for i, r := range reqs {
			isFirst[i] = !firstSeen[r.Service]
			firstSeen[r.Service] = true
		}

		inFlight := 0
		var queued []int
		var start func(i int, at sim.Time)
		start = func(i int, at sim.Time) {
			inFlight++
			ro.in.Add(1)
			r := reqs[i]
			k.Go("replay", func(p *sim.Proc) {
				defer func() {
					inFlight--
					ro.in.Add(-1)
					if len(queued) > 0 && (opts.MaxInFlight <= 0 || inFlight < opts.MaxInFlight) {
						next := queued[0]
						queued = queued[1:]
						start(next, p.Now())
					}
				}()
				hr, err := rs.Request(p, d, r.Client/regions, regs[r.Service], serviceKey, opts.RequestTimeout)
				ro.request(at, p.Now(), serviceKey, err)
				if err != nil {
					rres.Errors++
					return
				}
				rres.Totals.Add(at, hr.Total)
				if isFirst[i] {
					rres.FirstRequests.Add(at, hr.Total)
				}
			})
		}
		prepDone.OnDone(func(t0 sim.Time, _ error) {
			times := make([]sim.Time, len(reqs))
			for i, r := range reqs {
				times[i] = t0 + r.At
			}
			k.AtBatch(times, func(i int) {
				if opts.MaxInFlight > 0 && inFlight >= opts.MaxInFlight {
					queued = append(queued, i)
					return
				}
				start(i, k.Now())
			})
		})
	}

	rs.Group.RunUntil(trace.Config.Duration + 30*time.Minute)

	res.Totals = metrics.NewHist(serviceKey + "/totals")
	for d, rres := range res.PerRegion {
		res.Errors += rres.Errors
		res.Deployments += rres.FirstRequests.Len()
		if err := res.Totals.Merge(rres.Totals.ToHist()); err != nil {
			return nil, fmt.Errorf("workload: merging region %d totals: %w", d, err)
		}
	}
	return res, nil
}
