// Package workload generates the request trace of the paper's evaluation
// and replays it against a testbed.
//
// The paper extracts TCP conversations to public port-80 addresses from the
// five-minute bigFlows.pcap capture, keeps the destinations receiving at
// least 20 requests, and obtains 42 edge services receiving 1708 requests
// (fig. 9), whose first contacts trigger 42 on-demand deployments with a
// burst of up to eight deployments per second at the start (fig. 10). The
// capture itself is not redistributable, so this package synthesizes a
// trace with the same published marginals: request total and per-service
// minimum, a heavy-tailed (Zipf-like) popularity distribution, and a
// front-loaded arrival process that reproduces the early deployment burst.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Config parameterizes trace generation. The zero value is not usable; use
// DefaultConfig for the paper's numbers.
type Config struct {
	Seed          int64
	Services      int           // distinct edge services (42)
	TotalRequests int           // total requests (1708)
	MinPerService int           // minimum requests per service (20)
	Duration      time.Duration // capture window (5 min)
	Clients       int           // requesting clients (20 RPis)
	// ZipfS is the popularity skew exponent (>1 for a heavy tail).
	ZipfS float64
	// FrontLoad skews arrival times toward the window start; 1 = uniform,
	// larger values concentrate arrivals earlier (u^FrontLoad scaling).
	FrontLoad float64
}

// DefaultConfig reproduces the paper's trace parameters.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Services:      42,
		TotalRequests: 1708,
		MinPerService: 20,
		Duration:      5 * time.Minute,
		Clients:       20,
		ZipfS:         1.15,
		FrontLoad:     1.25,
	}
}

// Request is one trace entry.
type Request struct {
	At      time.Duration // arrival offset from trace start
	Client  int           // client index [0, Clients)
	Service int           // service index [0, Services)
}

// Trace is a generated request trace, sorted by arrival time.
type Trace struct {
	Config   Config
	Requests []Request
}

// Generate synthesizes a trace per cfg. It panics on infeasible parameters
// (configuration errors).
func Generate(cfg Config) *Trace {
	if cfg.Services <= 0 || cfg.TotalRequests < cfg.Services*cfg.MinPerService {
		panic(fmt.Sprintf("workload: infeasible config: %d services x %d min > %d total",
			cfg.Services, cfg.MinPerService, cfg.TotalRequests))
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.15
	}
	if cfg.FrontLoad <= 0 {
		cfg.FrontLoad = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-service request counts: minimum floor + Zipf-distributed rest.
	counts := make([]int, cfg.Services)
	for i := range counts {
		counts[i] = cfg.MinPerService
	}
	rest := cfg.TotalRequests - cfg.Services*cfg.MinPerService
	weights := make([]float64, cfg.Services)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		wsum += weights[i]
	}
	assigned := 0
	for i := range weights {
		share := int(math.Floor(float64(rest) * weights[i] / wsum))
		counts[i] += share
		assigned += share
	}
	// Distribute the rounding remainder to the most popular services.
	for i := 0; assigned < rest; i, assigned = (i+1)%cfg.Services, assigned+1 {
		counts[i]++
	}

	// Arrival times. Each service is a "conversation" with an explicit
	// start (its deployment trigger, fig. 10) followed by its remaining
	// requests. Starts are a mixture: a share of conversations is already
	// active when the capture begins (they start within the first
	// seconds, producing the paper's burst of up to ~8 deployments per
	// second), the rest spread over the window with a front-loaded bias.
	var reqs []Request
	earlyShare := (cfg.Services*3 + 9) / 10 // 30% of conversations, rounded up
	earlyPick := rng.Perm(cfg.Services)
	early := make(map[int]bool, earlyShare)
	for _, idx := range earlyPick[:earlyShare] {
		early[idx] = true
	}
	for svc, n := range counts {
		var start time.Duration
		if early[svc] {
			start = time.Duration(rng.Float64() * 3 * float64(time.Second))
		} else {
			start = time.Duration(math.Pow(rng.Float64(), 1.1) * 0.9 * float64(cfg.Duration))
		}
		reqs = append(reqs, Request{
			At:      start,
			Client:  rng.Intn(cfg.Clients),
			Service: svc,
		})
		span := float64(cfg.Duration - start)
		for j := 1; j < n; j++ {
			at := start + time.Duration(math.Pow(rng.Float64(), cfg.FrontLoad)*span)
			reqs = append(reqs, Request{
				At:      at,
				Client:  rng.Intn(cfg.Clients),
				Service: svc,
			})
		}
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].At != reqs[j].At {
			return reqs[i].At < reqs[j].At
		}
		if reqs[i].Service != reqs[j].Service {
			return reqs[i].Service < reqs[j].Service
		}
		return reqs[i].Client < reqs[j].Client
	})
	return &Trace{Config: cfg, Requests: reqs}
}

// RequestsPerService returns the per-service request counts (fig. 9's
// distribution), indexed by service.
func (t *Trace) RequestsPerService() []int {
	counts := make([]int, t.Config.Services)
	for _, r := range t.Requests {
		counts[r.Service]++
	}
	return counts
}

// FirstArrivals returns each service's first request time — the on-demand
// deployment times of fig. 10 — sorted ascending.
func (t *Trace) FirstArrivals() []time.Duration {
	first := make(map[int]time.Duration, t.Config.Services)
	for _, r := range t.Requests {
		if cur, ok := first[r.Service]; !ok || r.At < cur {
			first[r.Service] = r.At
		}
	}
	out := make([]time.Duration, 0, len(first))
	for _, at := range first {
		out = append(out, at)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeploymentsPerSecond buckets FirstArrivals into one-second bins
// (fig. 10's histogram).
func (t *Trace) DeploymentsPerSecond() []int {
	buckets := make([]int, int(t.Config.Duration/time.Second)+1)
	for _, at := range t.FirstArrivals() {
		idx := int(at / time.Second)
		if idx >= len(buckets) {
			idx = len(buckets) - 1
		}
		buckets[idx]++
	}
	return buckets
}

// RequestsPerSecond buckets all arrivals into one-second bins.
func (t *Trace) RequestsPerSecond() []int {
	buckets := make([]int, int(t.Config.Duration/time.Second)+1)
	for _, r := range t.Requests {
		idx := int(r.At / time.Second)
		if idx >= len(buckets) {
			idx = len(buckets) - 1
		}
		buckets[idx]++
	}
	return buckets
}
