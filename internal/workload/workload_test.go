package workload

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"transparentedge/internal/catalog"
	"transparentedge/internal/testbed"
)

func TestGenerateMatchesPaperMarginals(t *testing.T) {
	tr := Generate(DefaultConfig(1))
	if got := len(tr.Requests); got != 1708 {
		t.Fatalf("requests = %d, want 1708", got)
	}
	counts := tr.RequestsPerService()
	if len(counts) != 42 {
		t.Fatalf("services = %d, want 42", len(counts))
	}
	for i, c := range counts {
		if c < 20 {
			t.Errorf("service %d received %d requests, want >=20", i, c)
		}
	}
	// Heavy tail: the most popular service gets several times the minimum.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Errorf("max per-service requests = %d, want a heavy tail (>100)", max)
	}
	// All arrivals inside the 5-minute window, sorted.
	last := time.Duration(-1)
	for _, r := range tr.Requests {
		if r.At < 0 || r.At > 5*time.Minute {
			t.Fatalf("arrival %v outside window", r.At)
		}
		if r.At < last {
			t.Fatal("requests not sorted by arrival")
		}
		last = r.At
		if r.Client < 0 || r.Client >= 20 {
			t.Fatalf("client %d out of range", r.Client)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(7))
	b := Generate(DefaultConfig(7))
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	c := Generate(DefaultConfig(8))
	same := true
	for i := range a.Requests {
		if a.Requests[i] != c.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestDeploymentBurstEarly(t *testing.T) {
	tr := Generate(DefaultConfig(1))
	arrivals := tr.FirstArrivals()
	if len(arrivals) != 42 {
		t.Fatalf("deployments = %d, want 42", len(arrivals))
	}
	// Front-loading: a solid share of conversations is active right at
	// capture start (fig. 10: up to eight deployments per second early).
	early := 0
	for _, at := range arrivals {
		if at < 5*time.Second {
			early++
		}
	}
	if early < 8 || early > 25 {
		t.Fatalf("%d/42 deployments in first 5s; want an early burst without a pile-up", early)
	}
	maxPerSec := 0
	for _, n := range tr.DeploymentsPerSecond() {
		if n > maxPerSec {
			maxPerSec = n
		}
	}
	if maxPerSec < 2 || maxPerSec > 10 {
		t.Fatalf("max deployments/s = %d, want the paper's <=8-ish burst", maxPerSec)
	}
	buckets := tr.DeploymentsPerSecond()
	sum := 0
	for _, b := range buckets {
		sum += b
	}
	if sum != 42 {
		t.Fatalf("bucketed deployments = %d, want 42", sum)
	}
}

func TestInfeasibleConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("infeasible config did not panic")
		}
	}()
	Generate(Config{Services: 42, TotalRequests: 100, MinPerService: 20, Duration: time.Minute})
}

// Property: for any feasible parameters, totals and minimums hold.
func TestQuickGenerateInvariants(t *testing.T) {
	f := func(services, minPer uint8, extra uint16) bool {
		s := int(services%20) + 1
		m := int(minPer%10) + 1
		total := s*m + int(extra%500)
		cfg := Config{
			Seed: 3, Services: s, TotalRequests: total,
			MinPerService: m, Duration: time.Minute, Clients: 5,
		}
		tr := Generate(cfg)
		if len(tr.Requests) != total {
			return false
		}
		for _, c := range tr.RequestsPerService() {
			if c < m {
				return false
			}
		}
		return len(tr.FirstArrivals()) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestsPerSecondConserved(t *testing.T) {
	tr := Generate(DefaultConfig(1))
	sum := 0
	for _, b := range tr.RequestsPerSecond() {
		sum += b
	}
	if sum != len(tr.Requests) {
		t.Fatalf("bucketed = %d, want %d", sum, len(tr.Requests))
	}
}

func TestReplaySmallTraceOnDocker(t *testing.T) {
	// A reduced trace keeps the unit test quick while exercising the full
	// replay machinery: registration, pre-pull/create, arrivals, metrics.
	cfg := Config{
		Seed: 1, Services: 4, TotalRequests: 40, MinPerService: 5,
		Duration: 30 * time.Second, Clients: 5, ZipfS: 1.2, FrontLoad: 1.5,
	}
	tr := Generate(cfg)
	tb := testbed.New(testbed.Options{Seed: 1, EnableDocker: true, NumClients: 5})
	res, err := Replay(tb, tr, catalog.Nginx, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Totals.Len() != 40 {
		t.Fatalf("measured = %d, want 40", res.Totals.Len())
	}
	if res.FirstRequests.Len() != 4 {
		t.Fatalf("first requests = %d, want 4", res.FirstRequests.Len())
	}
	// First requests include a scale-up; they must be slower than the
	// overall median (which is dominated by warm requests).
	if res.FirstRequests.Median() <= res.Totals.Median() {
		t.Fatalf("first median %v <= overall median %v",
			res.FirstRequests.Median(), res.Totals.Median())
	}
	// Warm Docker scale-up (pre-pulled, pre-created) stays under a second.
	if res.FirstRequests.Median() > time.Second {
		t.Fatalf("first-request median = %v, want <1s", res.FirstRequests.Median())
	}
	// Exactly one deployment per service.
	recs := tb.Ctrl.RecordsFor("egs-docker", "")
	scaleUps := 0
	for _, r := range recs {
		if r.DidScaleUp {
			scaleUps++
		}
	}
	if scaleUps != 4 {
		t.Fatalf("scale-ups = %d, want 4", scaleUps)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(DefaultConfig(5))
	csv := orig.MarshalCSV()
	back, err := ParseCSV(csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(orig.Requests) {
		t.Fatalf("requests = %d, want %d", len(back.Requests), len(orig.Requests))
	}
	if back.Config.Services != 42 || back.Config.Clients != orig.Config.Clients {
		t.Fatalf("derived config = %+v", back.Config)
	}
	// Millisecond truncation is the only permitted difference.
	for i := range back.Requests {
		o, b := orig.Requests[i], back.Requests[i]
		if b.Service != o.Service || b.Client != o.Client {
			// Same-millisecond reordering is acceptable; verify at least
			// the timestamps are non-decreasing and counts match.
			continue
		}
		if d := o.At - b.At; d < 0 || d >= time.Millisecond {
			t.Fatalf("request %d time drift %v", i, d)
		}
	}
	// Service IDs are compacted in first-appearance order, so compare the
	// per-service count multisets rather than index-aligned values.
	perOrig := orig.RequestsPerService()
	perBack := back.RequestsPerService()
	sort.Ints(perOrig)
	sort.Ints(perBack)
	for i := range perOrig {
		if perOrig[i] != perBack[i] {
			t.Fatalf("sorted count %d: %d != %d", i, perBack[i], perOrig[i])
		}
	}
}

func TestParseCSVCompactsIDs(t *testing.T) {
	src := "at_ms,client,service\n100,7,1000\n50,7,2000\n200,9,1000\n"
	tr, err := ParseCSV(src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config.Services != 2 || tr.Config.Clients != 2 || tr.Config.TotalRequests != 3 {
		t.Fatalf("config = %+v", tr.Config)
	}
	if tr.Requests[0].At != 50*time.Millisecond {
		t.Fatalf("not sorted: %+v", tr.Requests)
	}
	for _, r := range tr.Requests {
		if r.Service > 1 || r.Client > 1 {
			t.Fatalf("ids not compacted: %+v", r)
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"at_ms,client,service\n",
		"at_ms,client,service\nx,0,0\n",
		"at_ms,client,service\n5,0\n",
		"at_ms,client,service\n5,0,0,9\n",
		"at_ms,client,service\n-5,0,0\n",
		"at_ms,client,service\n5,-1,0\n",
		"at_ms,client,service\n5,0,oops\n",
	}
	for _, src := range cases {
		if _, err := ParseCSV(src); err == nil {
			t.Errorf("ParseCSV(%q) accepted", src)
		}
	}
	// Comments and blank lines are tolerated.
	tr, err := ParseCSV("at_ms,client,service\n# comment\n\n5,0,0\n")
	if err != nil || len(tr.Requests) != 1 {
		t.Fatalf("tolerant parse = %v, %v", tr, err)
	}
}
