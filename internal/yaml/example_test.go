package yaml_test

import (
	"fmt"

	"transparentedge/internal/yaml"
)

// Decode parses the Kubernetes-style subset used by service definitions.
func ExampleDecode() {
	v, err := yaml.Decode(`
metadata:
  name: web
spec:
  replicas: 0
  ports: [80, 443]
`)
	if err != nil {
		panic(err)
	}
	m := v.(map[string]any)
	fmt.Println(m["metadata"].(map[string]any)["name"])
	fmt.Println(m["spec"].(map[string]any)["replicas"])
	fmt.Println(m["spec"].(map[string]any)["ports"])
	// Output:
	// web
	// 0
	// [80 443]
}

// Encode renders canonical values deterministically (sorted keys), so the
// output is stable and re-decodable.
func ExampleEncode() {
	fmt.Print(yaml.Encode(map[string]any{
		"kind":     "Service",
		"metadata": map[string]any{"name": "web"},
		"ports":    []any{int64(80)},
	}))
	// Output:
	// kind: Service
	// metadata:
	//   name: web
	// ports:
	//   - 80
}

// DecodeAll reads multi-document streams (Deployment + Service files).
func ExampleDecodeAll() {
	docs, err := yaml.DecodeAll("kind: Deployment\n---\nkind: Service\n")
	if err != nil {
		panic(err)
	}
	for _, d := range docs {
		fmt.Println(d.(map[string]any)["kind"])
	}
	// Output:
	// Deployment
	// Service
}
