package yaml

import (
	"reflect"
	"testing"
)

// FuzzDecode checks that arbitrary input never panics the parser and that
// any successfully decoded document is stable under an encode/decode round
// trip (Encode canonicalizes, so decode(encode(v)) == decode(encode(decode(encode(v))))).
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		"a: 1",
		"a:\n  b: c\n",
		"- 1\n- 2\n",
		"a: [1, {b: c}]\n",
		"---\na: 1\n---\nb: 2\n",
		"key: \"quo\\\"ted\"\n",
		"k: 'single''quote'\n",
		"a:\n- b: 1\n  c: 2\n",
		"# comment\nx: y # trailing\n",
		"spec:\n  template:\n    spec:\n      containers:\n      - image: nginx\n",
		"a: |\n  block\n",
		"\t: bad",
		"{: :}",
		"a: [1, [2, [3]]]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v, err := Decode(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		enc := Encode(v)
		v2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded failed: %v\nvalue: %#v\nencoded:\n%s", err, v, enc)
		}
		enc2 := Encode(v2)
		v3, err := Decode(enc2)
		if err != nil {
			t.Fatalf("third decode failed: %v", err)
		}
		if !reflect.DeepEqual(v2, v3) {
			t.Fatalf("encode/decode not stable:\n v2=%#v\n v3=%#v", v2, v3)
		}
	})
}
