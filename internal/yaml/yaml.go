// Package yaml implements the YAML subset needed for Kubernetes-style
// service definition files: block mappings and sequences nested by
// indentation, plain/quoted scalars (string, int, float, bool, null),
// comments, multi-document streams separated by "---", and simple one-line
// flow sequences ([a, b]) and mappings ({k: v}).
//
// Decoded values use the canonical Go forms map[string]any, []any, string,
// int64, float64, bool, and nil. Encode renders those forms back to YAML
// with deterministic (sorted) key order, so Encode/Decode round-trips.
package yaml

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Decode parses the first document in src.
func Decode(src string) (any, error) {
	docs, err := DecodeAll(src)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, nil
	}
	return docs[0], nil
}

// DecodeAll parses every document in src (documents are separated by ---).
func DecodeAll(src string) ([]any, error) {
	lines := splitLines(src)
	var docs []any
	start := 0
	flush := func(end int) error {
		chunk := lines[start:end]
		if !hasContent(chunk) {
			return nil
		}
		p := &parser{lines: chunk}
		v, err := p.parseBlock(0)
		if err != nil {
			return err
		}
		if !p.atEnd() {
			l := p.peek()
			return fmt.Errorf("yaml: line %d: unexpected content %q (bad indentation?)", l.num, l.text)
		}
		docs = append(docs, v)
		return nil
	}
	for i, l := range lines {
		if strings.TrimRight(l.text, " ") == "---" && l.indent == 0 {
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if err := flush(len(lines)); err != nil {
		return nil, err
	}
	return docs, nil
}

type line struct {
	num    int // 1-based source line number
	indent int
	text   string // content without indentation
	// comment marks a comment-only line: invisible to the structure
	// parser, but literal content inside a block scalar.
	comment bool
}

// blankIndent marks a blank (or comment-only) line kept in the stream so
// block scalars can preserve interior empty lines.
const blankIndent = -2

func splitLines(src string) []line {
	raw := strings.Split(src, "\n")
	var out []line
	for i, r := range raw {
		trimmed := strings.TrimLeft(r, " \t")
		if trimmed == "" {
			out = append(out, line{num: i + 1, indent: blankIndent})
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			out = append(out, line{
				num: i + 1, indent: len(r) - len(trimmed),
				text: strings.TrimRight(trimmed, " "), comment: true,
			})
			continue
		}
		if strings.Contains(r[:len(r)-len(trimmed)], "\t") {
			// Tabs in indentation are invalid YAML; mark the line so the
			// parser reports it with its line number.
			out = append(out, line{num: i + 1, indent: -1, text: trimmed})
			continue
		}
		out = append(out, line{num: i + 1, indent: len(r) - len(trimmed), text: strings.TrimRight(trimmed, " ")})
	}
	return out
}

func hasContent(ls []line) bool {
	for _, l := range ls {
		if l.indent == blankIndent || l.comment {
			continue
		}
		if strings.TrimRight(l.text, " ") != "---" {
			return true
		}
	}
	return false
}

type parser struct {
	lines []line
	pos   int
}

// skipBlanks advances past blank-line and comment-line markers (they only
// matter inside block scalars).
func (p *parser) skipBlanks() {
	for p.pos < len(p.lines) && (p.lines[p.pos].indent == blankIndent || p.lines[p.pos].comment) {
		p.pos++
	}
}

func (p *parser) atEnd() bool {
	p.skipBlanks()
	return p.pos >= len(p.lines)
}
func (p *parser) peek() line { p.skipBlanks(); return p.lines[p.pos] }
func (p *parser) advance()   { p.pos++ }

// parseBlock parses a block (mapping, sequence, or scalar) whose items are
// indented at least minIndent.
func (p *parser) parseBlock(minIndent int) (any, error) {
	if p.atEnd() {
		return nil, nil
	}
	l := p.peek()
	if l.indent < 0 {
		return nil, fmt.Errorf("yaml: line %d: tab character in indentation", l.num)
	}
	if l.indent < minIndent {
		return nil, nil
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSequence(l.indent)
	}
	if isMappingLine(l.text) {
		return p.parseMapping(l.indent)
	}
	// Bare scalar document.
	p.advance()
	return parseScalar(l.text)
}

// isMappingLine reports whether text looks like "key: ..." or "key:".
func isMappingLine(text string) bool {
	_, _, ok := splitKeyValue(text)
	return ok
}

// splitKeyValue splits "key: value" respecting quoted keys.
func splitKeyValue(text string) (key, value string, ok bool) {
	rest := text
	var k string
	if strings.HasPrefix(rest, `"`) || strings.HasPrefix(rest, `'`) {
		quote := rest[0]
		end := -1
		esc := false
		for i := 1; i < len(rest); i++ {
			switch {
			case esc:
				esc = false
			case quote == '"' && rest[i] == '\\':
				esc = true
			case rest[i] == quote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", false
		}
		k = rest[:end+1]
		rest = rest[end+1:]
		if !strings.HasPrefix(rest, ":") {
			return "", "", false
		}
		rest = rest[1:]
	} else {
		idx := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == ':' {
				if i+1 == len(rest) || rest[i+1] == ' ' {
					idx = i
					break
				}
			}
			// A '#' outside quotes starts a comment; keys never contain it.
			if rest[i] == '#' {
				break
			}
		}
		if idx < 0 {
			return "", "", false
		}
		k = rest[:idx]
		rest = rest[idx+1:]
	}
	if strings.ContainsAny(k, "{}[]") {
		return "", "", false
	}
	return strings.TrimSpace(k), strings.TrimSpace(rest), true
}

func (p *parser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for !p.atEnd() {
		l := p.peek()
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation", l.num)
		}
		rawKey, rawVal, ok := splitKeyValue(l.text)
		if !ok {
			break
		}
		key, err := unquoteKey(rawKey)
		if err != nil {
			return nil, fmt.Errorf("yaml: line %d: %v", l.num, err)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", l.num, key)
		}
		rawVal = stripComment(rawVal)
		p.advance()
		if isBlockScalarHeader(rawVal) {
			v, err := p.parseBlockScalar(l.indent, rawVal)
			if err != nil {
				return nil, fmt.Errorf("yaml: line %d: %v", l.num, err)
			}
			m[key] = v
			continue
		}
		if rawVal == "" {
			// Nested block or null.
			child, err := p.parseChild(indent)
			if err != nil {
				return nil, err
			}
			m[key] = child
		} else {
			v, err := parseScalar(rawVal)
			if err != nil {
				return nil, fmt.Errorf("yaml: line %d: %v", l.num, err)
			}
			m[key] = v
		}
	}
	return m, nil
}

// parseChild parses the value block following a "key:" or "-" line.
// Sequences may be indented at the same level as their parent key
// (a common Kubernetes style), mappings must be deeper.
func (p *parser) parseChild(parentIndent int) (any, error) {
	if p.atEnd() {
		return nil, nil
	}
	l := p.peek()
	if l.indent < 0 {
		return nil, fmt.Errorf("yaml: line %d: tab character in indentation", l.num)
	}
	isSeq := strings.HasPrefix(l.text, "- ") || l.text == "-"
	if isSeq && l.indent >= parentIndent {
		return p.parseSequence(l.indent)
	}
	if l.indent > parentIndent {
		return p.parseBlock(l.indent)
	}
	return nil, nil
}

func (p *parser) parseSequence(indent int) (any, error) {
	var seq []any
	for !p.atEnd() {
		l := p.peek()
		if l.indent != indent || !(strings.HasPrefix(l.text, "- ") || l.text == "-") {
			break
		}
		p.advance()
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		rest = stripComment(rest)
		if rest == "" {
			child, err := p.parseChild(indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, child)
			continue
		}
		if k, v, ok := splitKeyValue(rest); ok {
			// Mapping starting on the dash line: "- name: x" — subsequent
			// keys are indented to the position after "- ".
			itemIndent := indent + 2
			item := map[string]any{}
			key, err := unquoteKey(k)
			if err != nil {
				return nil, fmt.Errorf("yaml: line %d: %v", l.num, err)
			}
			if v == "" {
				child, cerr := p.parseChild(itemIndent)
				if cerr != nil {
					return nil, cerr
				}
				item[key] = child
			} else {
				sv, serr := parseScalar(v)
				if serr != nil {
					return nil, fmt.Errorf("yaml: line %d: %v", l.num, serr)
				}
				item[key] = sv
			}
			// Continue the mapping on following lines at itemIndent.
			more, err := p.parseMapping(itemIndent)
			if err != nil {
				return nil, err
			}
			for mk, mv := range more.(map[string]any) {
				if _, dup := item[mk]; dup {
					return nil, fmt.Errorf("yaml: line %d: duplicate key %q", l.num, mk)
				}
				item[mk] = mv
			}
			seq = append(seq, item)
			continue
		}
		v, err := parseScalar(rest)
		if err != nil {
			return nil, fmt.Errorf("yaml: line %d: %v", l.num, err)
		}
		seq = append(seq, v)
	}
	return seq, nil
}

func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inD {
				i++ // skip the escaped character
			}
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ') {
				return strings.TrimRight(s[:i], " ")
			}
		}
	}
	return s
}

func unquoteKey(k string) (string, error) {
	if strings.HasPrefix(k, `"`) || strings.HasPrefix(k, `'`) {
		v, err := parseScalar(k)
		if err != nil {
			return "", err
		}
		s, ok := v.(string)
		if !ok {
			return "", fmt.Errorf("invalid quoted key %q", k)
		}
		return s, nil
	}
	return k, nil
}

// isBlockScalarHeader reports whether a value introduces a block scalar.
func isBlockScalarHeader(v string) bool {
	switch v {
	case "|", "|-", "|+", ">", ">-", ">+":
		return true
	}
	return false
}

// parseBlockScalar consumes the indented block following a "key: |" (or >)
// header. parentIndent is the key's indentation; the block consists of all
// following lines (including blanks) indented deeper than the parent.
func (p *parser) parseBlockScalar(parentIndent int, header string) (string, error) {
	folded := header[0] == '>'
	chomp := byte(0)
	if len(header) > 1 {
		chomp = header[1]
	}
	// Find the block indentation from the first non-blank line.
	blockIndent := -1
	probe := p.pos
	for probe < len(p.lines) {
		l := p.lines[probe]
		if l.indent == blankIndent {
			probe++
			continue
		}
		if l.indent <= parentIndent {
			break
		}
		blockIndent = l.indent
		break
	}
	if blockIndent < 0 {
		// Empty block scalar.
		if chomp == '+' || chomp == 0 {
			return "", nil
		}
		return "", nil
	}
	var content []string // raw lines relative to blockIndent
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent == blankIndent {
			content = append(content, "")
			p.pos++
			continue
		}
		// Comment-looking lines inside the block are literal content.
		if l.indent < blockIndent {
			break
		}
		if l.indent < 0 {
			return "", fmt.Errorf("tab character in block scalar indentation")
		}
		content = append(content, strings.Repeat(" ", l.indent-blockIndent)+l.text)
		p.pos++
	}
	// Trailing blank lines are subject to chomping.
	trailing := 0
	for len(content) > 0 && content[len(content)-1] == "" {
		content = content[:len(content)-1]
		trailing++
	}
	var body string
	if folded {
		// Fold single newlines into spaces; blank lines become newlines.
		var parts []string
		cur := ""
		for _, ln := range content {
			switch {
			case ln == "":
				parts = append(parts, cur)
				cur = ""
			case cur == "":
				cur = ln
			default:
				cur += " " + ln
			}
		}
		parts = append(parts, cur)
		body = strings.Join(parts, "\n")
	} else {
		body = strings.Join(content, "\n")
	}
	switch chomp {
	case '-':
		return body, nil
	case '+':
		return body + strings.Repeat("\n", trailing+1), nil
	default:
		return body + "\n", nil
	}
}

// parseScalar interprets a flow value: quoted string, flow seq/map, or a
// plain scalar with YAML 1.2 core-schema typing.
func parseScalar(s string) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case strings.HasPrefix(s, `"`):
		if len(s) < 2 || !strings.HasSuffix(s, `"`) {
			return nil, fmt.Errorf("unterminated double-quoted string %q", s)
		}
		return strconv.Unquote(s)
	case strings.HasPrefix(s, `'`):
		if len(s) < 2 || !strings.HasSuffix(s, `'`) {
			return nil, fmt.Errorf("unterminated single-quoted string %q", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case strings.HasPrefix(s, "["):
		return parseFlowSeq(s)
	case strings.HasPrefix(s, "{"):
		return parseFlowMap(s)
	}
	switch s {
	case "null", "~", "Null", "NULL":
		return nil, nil
	case "true", "True", "TRUE":
		return true, nil
	case "false", "False", "FALSE":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && looksNumeric(s) {
		return f, nil
	}
	return s, nil
}

// looksNumeric guards against ParseFloat accepting "Inf"/"NaN"-ish strings
// we'd rather treat as text.
func looksNumeric(s string) bool {
	for _, r := range s {
		if (r >= '0' && r <= '9') || r == '.' || r == '-' || r == '+' || r == 'e' || r == 'E' {
			continue
		}
		return false
	}
	return true
}

func parseFlowSeq(s string) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("unterminated flow sequence %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []any{}, nil
	}
	parts, err := splitFlow(inner)
	if err != nil {
		return nil, err
	}
	seq := make([]any, 0, len(parts))
	for _, part := range parts {
		v, err := parseScalar(part)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

func parseFlowMap(s string) (any, error) {
	if !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("unterminated flow mapping %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	m := map[string]any{}
	if inner == "" {
		return m, nil
	}
	parts, err := splitFlow(inner)
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		k, v, ok := splitKeyValue(strings.TrimSpace(part))
		if !ok {
			return nil, fmt.Errorf("invalid flow mapping entry %q", part)
		}
		key, err := unquoteKey(k)
		if err != nil {
			return nil, err
		}
		val, err := parseScalar(v)
		if err != nil {
			return nil, err
		}
		m[key] = val
	}
	return m, nil
}

// splitFlow splits flow content on top-level commas, honouring quotes and
// nested brackets.
func splitFlow(s string) ([]string, error) {
	var parts []string
	depth := 0
	inS, inD := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inD {
				i++ // skip the escaped character
			}
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[', '{':
			if !inS && !inD {
				depth++
			}
		case ']', '}':
			if !inS && !inD {
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("unbalanced brackets in %q", s)
				}
			}
		case ',':
			if !inS && !inD && depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 || inS || inD {
		return nil, fmt.Errorf("unbalanced flow syntax in %q", s)
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts, nil
}

// Encode renders v (canonical forms) as YAML with two-space indentation and
// sorted mapping keys.
func Encode(v any) string {
	var b strings.Builder
	encodeValue(&b, v, 0, false)
	out := b.String()
	if out == "" {
		return "null\n"
	}
	return out
}

// EncodeAll renders multiple documents separated by "---".
func EncodeAll(docs []any) string {
	var b strings.Builder
	for i, d := range docs {
		if i > 0 {
			b.WriteString("---\n")
		}
		b.WriteString(Encode(d))
	}
	return b.String()
}

func encodeValue(b *strings.Builder, v any, indent int, inSeq bool) {
	pad := strings.Repeat("  ", indent)
	switch t := v.(type) {
	case map[string]any:
		if len(t) == 0 {
			fmt.Fprintf(b, "%s{}\n", seqPad(pad, inSeq))
			return
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			prefix := pad
			if inSeq && i == 0 {
				prefix = pad[:len(pad)-2] + "- "
			}
			val := t[k]
			switch val.(type) {
			case map[string]any, []any:
				if isEmptyComposite(val) {
					fmt.Fprintf(b, "%s%s: %s\n", prefix, encodeKey(k), emptyComposite(val))
				} else {
					fmt.Fprintf(b, "%s%s:\n", prefix, encodeKey(k))
					encodeValue(b, val, indent+1, false)
				}
			default:
				fmt.Fprintf(b, "%s%s: %s\n", prefix, encodeKey(k), encodeScalar(val))
			}
		}
	case []any:
		if len(t) == 0 {
			fmt.Fprintf(b, "%s[]\n", seqPad(pad, inSeq))
			return
		}
		for _, item := range t {
			switch item.(type) {
			case map[string]any:
				if isEmptyComposite(item) {
					fmt.Fprintf(b, "%s- {}\n", pad)
				} else {
					encodeValue(b, item, indent+1, true)
				}
			case []any:
				if isEmptyComposite(item) {
					fmt.Fprintf(b, "%s- []\n", pad)
				} else {
					fmt.Fprintf(b, "%s-\n", pad)
					encodeValue(b, item, indent+1, false)
				}
			default:
				fmt.Fprintf(b, "%s- %s\n", pad, encodeScalar(item))
			}
		}
	default:
		fmt.Fprintf(b, "%s%s\n", seqPad(pad, inSeq), encodeScalar(v))
	}
}

func seqPad(pad string, inSeq bool) string {
	if inSeq {
		return pad[:len(pad)-2] + "- "
	}
	return pad
}

func isEmptyComposite(v any) bool {
	switch t := v.(type) {
	case map[string]any:
		return len(t) == 0
	case []any:
		return len(t) == 0
	}
	return false
}

func emptyComposite(v any) string {
	if _, ok := v.([]any); ok {
		return "[]"
	}
	return "{}"
}

func encodeKey(k string) string {
	if needsQuoting(k) {
		return strconv.Quote(k)
	}
	return k
}

func encodeScalar(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case bool:
		return strconv.FormatBool(t)
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case string:
		if needsQuoting(t) {
			return strconv.Quote(t)
		}
		return t
	default:
		return strconv.Quote(fmt.Sprint(t))
	}
}

// needsQuoting reports whether a plain rendering of s would not decode back
// to the identical string.
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	switch s {
	case "null", "~", "Null", "NULL", "true", "True", "TRUE", "false", "False", "FALSE":
		return true
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil && looksNumeric(s) {
		return true
	}
	if strings.ContainsAny(s, ":#{}[]\"'\n\t,&*!|>%@`") {
		// ':' only matters before space/EOL, but quoting is always safe.
		if !strings.Contains(s, ": ") && !strings.HasSuffix(s, ":") &&
			!strings.ContainsAny(s, "#{}[]\"'\n\t&*!|>%@`") {
			return false
		}
		return true
	}
	if s != strings.TrimSpace(s) {
		return true
	}
	if strings.HasPrefix(s, "- ") || s == "-" {
		return true
	}
	return false
}
