package yaml

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDecodeScalars(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"hello", "hello"},
		{"42", int64(42)},
		{"-7", int64(-7)},
		{"3.14", 3.14},
		{"true", true},
		{"false", false},
		{"null", nil},
		{"~", nil},
		{`"quoted: string"`, "quoted: string"},
		{`'single ''quoted'''`, "single 'quoted'"},
		{`"esc\nape"`, "esc\nape"},
	}
	for _, c := range cases {
		got, err := Decode(c.in)
		if err != nil {
			t.Errorf("Decode(%q) error: %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Decode(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestDecodeMapping(t *testing.T) {
	got, err := Decode("name: nginx\nreplicas: 3\nenabled: true\n")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"name": "nginx", "replicas": int64(3), "enabled": true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeNested(t *testing.T) {
	src := `
metadata:
  name: web
  labels:
    app: web
    tier: frontend
spec:
  replicas: 2
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	meta := m["metadata"].(map[string]any)
	if meta["name"] != "web" {
		t.Errorf("metadata.name = %v", meta["name"])
	}
	labels := meta["labels"].(map[string]any)
	if labels["tier"] != "frontend" {
		t.Errorf("labels = %#v", labels)
	}
	if m["spec"].(map[string]any)["replicas"] != int64(2) {
		t.Errorf("spec.replicas = %v", m["spec"])
	}
}

func TestDecodeSequences(t *testing.T) {
	src := `
ports:
  - 80
  - 443
names:
  - alpha
  - beta
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	if !reflect.DeepEqual(m["ports"], []any{int64(80), int64(443)}) {
		t.Errorf("ports = %#v", m["ports"])
	}
	if !reflect.DeepEqual(m["names"], []any{"alpha", "beta"}) {
		t.Errorf("names = %#v", m["names"])
	}
}

func TestDecodeSequenceOfMappings(t *testing.T) {
	src := `
containers:
  - name: nginx
    image: nginx:1.23.2
    ports:
      - containerPort: 80
  - name: sidecar
    image: env-writer-py
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	cs := got.(map[string]any)["containers"].([]any)
	if len(cs) != 2 {
		t.Fatalf("containers = %#v", cs)
	}
	c0 := cs[0].(map[string]any)
	if c0["image"] != "nginx:1.23.2" {
		t.Errorf("c0 = %#v", c0)
	}
	p0 := c0["ports"].([]any)[0].(map[string]any)
	if p0["containerPort"] != int64(80) {
		t.Errorf("ports = %#v", c0["ports"])
	}
	if cs[1].(map[string]any)["name"] != "sidecar" {
		t.Errorf("c1 = %#v", cs[1])
	}
}

func TestDecodeSequenceAtParentIndent(t *testing.T) {
	// Kubernetes style: sequence items at the same indent as the key.
	src := `
spec:
  containers:
  - name: a
  - name: b
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	cs := got.(map[string]any)["spec"].(map[string]any)["containers"].([]any)
	if len(cs) != 2 || cs[1].(map[string]any)["name"] != "b" {
		t.Fatalf("containers = %#v", cs)
	}
}

func TestDecodeComments(t *testing.T) {
	src := `
# leading comment
name: web  # trailing comment
image: "nginx:1.23.2" # with quotes
tag: 'v#1'
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	if m["name"] != "web" || m["image"] != "nginx:1.23.2" || m["tag"] != "v#1" {
		t.Fatalf("m = %#v", m)
	}
}

func TestDecodeFlow(t *testing.T) {
	src := `
args: [serve, --port, 8080]
labels: {app: web, "edge.service": true}
empty: []
none: {}
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	if !reflect.DeepEqual(m["args"], []any{"serve", "--port", int64(8080)}) {
		t.Errorf("args = %#v", m["args"])
	}
	labels := m["labels"].(map[string]any)
	if labels["app"] != "web" || labels["edge.service"] != true {
		t.Errorf("labels = %#v", labels)
	}
	if len(m["empty"].([]any)) != 0 {
		t.Errorf("empty = %#v", m["empty"])
	}
	if len(m["none"].(map[string]any)) != 0 {
		t.Errorf("none = %#v", m["none"])
	}
}

func TestDecodeMultiDocument(t *testing.T) {
	src := `
kind: Deployment
---
kind: Service
`
	docs, err := DecodeAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %d, want 2", len(docs))
	}
	if docs[0].(map[string]any)["kind"] != "Deployment" ||
		docs[1].(map[string]any)["kind"] != "Service" {
		t.Fatalf("docs = %#v", docs)
	}
}

func TestDecodeNullValueKey(t *testing.T) {
	got, err := Decode("emptyDir:\nname: x\n")
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	if v, ok := m["emptyDir"]; !ok || v != nil {
		t.Fatalf("emptyDir = %#v (present %v), want nil", v, ok)
	}
}

func TestDecodeDuplicateKeyError(t *testing.T) {
	if _, err := Decode("a: 1\na: 2\n"); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestDecodeTabIndentError(t *testing.T) {
	if _, err := Decode("a:\n\tb: 1\n"); err == nil {
		t.Fatal("tab indentation accepted")
	}
}

func TestDecodeKubernetesDeployment(t *testing.T) {
	src := `apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
  labels:
    app: nginx
spec:
  replicas: 0
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
        volumeMounts:
        - name: shared
          mountPath: /usr/share/nginx/html
      volumes:
      - name: shared
        emptyDir: {}
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	spec := m["spec"].(map[string]any)
	if spec["replicas"] != int64(0) {
		t.Errorf("replicas = %v", spec["replicas"])
	}
	tmpl := spec["template"].(map[string]any)["spec"].(map[string]any)
	ctr := tmpl["containers"].([]any)[0].(map[string]any)
	if ctr["image"] != "nginx:1.23.2" {
		t.Errorf("image = %v", ctr["image"])
	}
	vm := ctr["volumeMounts"].([]any)[0].(map[string]any)
	if vm["mountPath"] != "/usr/share/nginx/html" {
		t.Errorf("volumeMounts = %#v", vm)
	}
	vol := tmpl["volumes"].([]any)[0].(map[string]any)
	if ed, ok := vol["emptyDir"].(map[string]any); !ok || len(ed) != 0 {
		t.Errorf("emptyDir = %#v", vol["emptyDir"])
	}
}

func TestEncodeRoundTripDeployment(t *testing.T) {
	orig := map[string]any{
		"apiVersion": "apps/v1",
		"kind":       "Deployment",
		"metadata": map[string]any{
			"name":   "web",
			"labels": map[string]any{"app": "web", "edge.service": "web.example.com:80"},
		},
		"spec": map[string]any{
			"replicas": int64(0),
			"template": map[string]any{
				"spec": map[string]any{
					"containers": []any{
						map[string]any{
							"name":  "nginx",
							"image": "nginx:1.23.2",
							"ports": []any{map[string]any{"containerPort": int64(80)}},
						},
					},
				},
			},
		},
	}
	enc := Encode(orig)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode of encoded: %v\n%s", err, enc)
	}
	if !reflect.DeepEqual(dec, orig) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v\nyaml:\n%s", dec, orig, enc)
	}
}

func TestEncodeScalarQuoting(t *testing.T) {
	cases := []any{"true", "123", "", "a: b", "web.example.com:80", "plain", int64(5), true, nil, 2.5}
	for _, v := range cases {
		enc := Encode(map[string]any{"k": v})
		dec, err := Decode(enc)
		if err != nil {
			t.Errorf("Decode(Encode(%#v)) error: %v (%q)", v, err, enc)
			continue
		}
		got := dec.(map[string]any)["k"]
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v -> %#v (yaml %q)", v, got, enc)
		}
	}
}

func TestEncodeAllMultiDoc(t *testing.T) {
	docs := []any{
		map[string]any{"kind": "Deployment"},
		map[string]any{"kind": "Service"},
	}
	enc := EncodeAll(docs)
	back, err := DecodeAll(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, docs) {
		t.Fatalf("round trip = %#v", back)
	}
}

// genValue builds a random canonical YAML value of bounded depth.
func genValue(r *rand.Rand, depth int) any {
	if depth <= 0 {
		return genScalar(r)
	}
	switch r.Intn(4) {
	case 0:
		n := r.Intn(4)
		m := map[string]any{}
		for i := 0; i < n; i++ {
			m[genKey(r, i)] = genValue(r, depth-1)
		}
		return m
	case 1:
		n := r.Intn(4)
		s := make([]any, 0, n)
		for i := 0; i < n; i++ {
			s = append(s, genValue(r, depth-1))
		}
		if len(s) == 0 {
			return []any{}
		}
		return s
	default:
		return genScalar(r)
	}
}

func genScalar(r *rand.Rand) any {
	switch r.Intn(6) {
	case 0:
		return int64(r.Intn(2000) - 1000)
	case 1:
		return r.Intn(2) == 0
	case 2:
		return nil
	case 3:
		words := []string{"nginx", "web server", "1.23.2", "edge.service", "a: b", "true", "-", "# not a comment", "x'y\"z", "  padded  "}
		return words[r.Intn(len(words))]
	case 4:
		return float64(r.Intn(100)) + 0.5
	default:
		var b strings.Builder
		n := r.Intn(8) + 1
		for i := 0; i < n; i++ {
			b.WriteByte(byte('a' + r.Intn(26)))
		}
		return b.String()
	}
}

func genKey(r *rand.Rand, i int) string {
	keys := []string{"name", "image", "labels", "spec", "replicas", "edge.service", "app", "x", "metadata", "ports"}
	return keys[(r.Intn(len(keys))+i*3)%len(keys)]
}

// Property: Encode then Decode returns the identical value.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func() bool {
		v := genValue(r, 4)
		enc := Encode(v)
		dec, err := Decode(enc)
		if err != nil {
			t.Logf("decode error: %v\nvalue: %#v\nyaml:\n%s", err, v, enc)
			return false
		}
		if !reflect.DeepEqual(normalize(dec), normalize(v)) {
			t.Logf("mismatch:\n got %#v\nwant %#v\nyaml:\n%s", dec, v, enc)
			return false
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps empty/nil sequences to a common form (Decode cannot
// distinguish an absent block from an empty one).
func normalize(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := map[string]any{}
		for k, vv := range t {
			out[k] = normalize(vv)
		}
		return out
	case []any:
		if len(t) == 0 {
			return nil
		}
		out := make([]any, len(t))
		for i, vv := range t {
			out[i] = normalize(vv)
		}
		return out
	default:
		return v
	}
}

func TestDecodeErrorsCarryLineNumbers(t *testing.T) {
	_, err := Decode("a: 1\nb: [1, 2\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 mention", err)
	}
}

func TestDecodeEmpty(t *testing.T) {
	got, err := Decode("")
	if err != nil || got != nil {
		t.Fatalf("Decode(\"\") = %#v, %v", got, err)
	}
	got, err = Decode("# only comments\n\n")
	if err != nil || got != nil {
		t.Fatalf("Decode(comments) = %#v, %v", got, err)
	}
}

func TestEscapedQuoteBeforeComment(t *testing.T) {
	// Regression (found by fuzzing): a backslash-escaped quote inside a
	// double-quoted scalar must not confuse comment stripping.
	got, err := Decode(`k: "0\"00 #"` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if got.(map[string]any)["k"] != `0"00 #` {
		t.Fatalf("got %#v", got)
	}
	// And in flow context.
	got, err = Decode(`k: ["a\"b", 2]` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	seq := got.(map[string]any)["k"].([]any)
	if seq[0] != `a"b` || seq[1] != int64(2) {
		t.Fatalf("flow got %#v", seq)
	}
}

func TestBlockScalarLiteral(t *testing.T) {
	src := `
script: |
  #!/bin/sh
  echo hello

  echo world
after: 1
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	want := "#!/bin/sh\necho hello\n\necho world\n"
	if m["script"] != want {
		t.Fatalf("script = %q, want %q", m["script"], want)
	}
	if m["after"] != int64(1) {
		t.Fatalf("after = %v", m["after"])
	}
}

func TestBlockScalarLiteralStrip(t *testing.T) {
	got, err := Decode("s: |-\n  line1\n  line2\n")
	if err != nil {
		t.Fatal(err)
	}
	if got.(map[string]any)["s"] != "line1\nline2" {
		t.Fatalf("s = %q", got.(map[string]any)["s"])
	}
}

func TestBlockScalarFolded(t *testing.T) {
	src := `
msg: >
  folded into
  one line

  second paragraph
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	want := "folded into one line\nsecond paragraph\n"
	if got.(map[string]any)["msg"] != want {
		t.Fatalf("msg = %q, want %q", got.(map[string]any)["msg"], want)
	}
}

func TestBlockScalarNestedIndentPreserved(t *testing.T) {
	src := `
cfg: |
  server {
    listen 80;
  }
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	want := "server {\n  listen 80;\n}\n"
	if got.(map[string]any)["cfg"] != want {
		t.Fatalf("cfg = %q, want %q", got.(map[string]any)["cfg"], want)
	}
}

func TestBlockScalarEmpty(t *testing.T) {
	got, err := Decode("s: |\nnext: 2\n")
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	if m["s"] != "" || m["next"] != int64(2) {
		t.Fatalf("m = %#v", m)
	}
}

func TestBlockScalarInConfigMapShape(t *testing.T) {
	// The realistic Kubernetes use: a ConfigMap-style nested block scalar.
	src := `
kind: ConfigMap
data:
  nginx.conf: |
    worker_processes 1;
    events { worker_connections 1024; }
  motd: >-
    welcome to
    the edge
`
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	data := got.(map[string]any)["data"].(map[string]any)
	if data["nginx.conf"] != "worker_processes 1;\nevents { worker_connections 1024; }\n" {
		t.Fatalf("nginx.conf = %q", data["nginx.conf"])
	}
	if data["motd"] != "welcome to the edge" {
		t.Fatalf("motd = %q", data["motd"])
	}
}

func TestQuotedKeyWithEscapedBackslash(t *testing.T) {
	// Regression (found by fuzzing): a key ending in an escaped backslash
	// must round-trip through Encode/Decode.
	orig := map[string]any{`!\`: nil}
	enc := Encode(orig)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode %q: %v", enc, err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("round trip = %#v, want %#v", got, orig)
	}
}
