// Command benchcompare diffs two Go benchmark result files when benchstat
// is not installed. It understands both the plain `go test -bench` text
// format and the `go test -json` event stream `make bench` stores in
// BENCH_*.json, and compares every benchmark present in both inputs
// metric by metric (ns/op, B/op, allocs/op, and custom ReportMetric
// units).
//
// Usage:
//
//	benchcompare OLD NEW      # print old -> new deltas per benchmark
//	benchcompare -totext FILE # convert a -json stream to plain bench text
//	                          # (feed a stored baseline to benchstat)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count,
// then value/unit pairs. The -N GOMAXPROCS suffix is stripped so runs
// from machines with different core counts still line up.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// metrics maps unit -> value for one benchmark.
type metrics map[string]float64

// parseFile extracts benchmark results from path, transparently decoding
// a `go test -json` stream (every line a JSON event whose Output fields
// carry fragments of the original text) or plain bench output. A result
// line is often split across several events — the harness prints the
// benchmark name, runs it, then prints the numbers — so the stream's
// Output fragments are concatenated back into text before line parsing.
// It returns the results keyed by benchmark name plus the names in
// first-seen order.
func parseFile(path string) (map[string]metrics, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Action string
				Output string
			}
			if json.Unmarshal([]byte(line), &ev) != nil || ev.Action != "output" {
				continue
			}
			text.WriteString(ev.Output)
			continue
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}

	results := make(map[string]metrics)
	var order []string
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		if _, seen := results[name]; !seen {
			results[name] = make(metrics)
			order = append(order, name)
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			results[name][fields[i+1]] = v
		}
	}
	return results, order, nil
}

// toText re-emits a stored result file as plain bench text (for piping a
// -json baseline into benchstat).
func toText(path string) error {
	results, order, err := parseFile(path)
	if err != nil {
		return err
	}
	for _, name := range order {
		m := results[name]
		units := make([]string, 0, len(m))
		for u := range m {
			units = append(units, u)
		}
		sort.Strings(units)
		var b strings.Builder
		fmt.Fprintf(&b, "%s 1", name)
		for _, u := range units {
			fmt.Fprintf(&b, " %v %s", m[u], u)
		}
		fmt.Println(b.String())
	}
	return nil
}

func compare(oldPath, newPath string) error {
	oldR, _, err := parseFile(oldPath)
	if err != nil {
		return err
	}
	newR, order, err := parseFile(newPath)
	if err != nil {
		return err
	}
	if len(newR) == 0 {
		return fmt.Errorf("no benchmark results in %s", newPath)
	}
	fmt.Printf("baseline: %s\nhead:     %s\n", oldPath, newPath)
	for _, name := range order {
		fmt.Printf("\n%s\n", name)
		base, ok := oldR[name]
		if !ok {
			fmt.Println("  (no baseline)")
			continue
		}
		units := make([]string, 0, len(newR[name]))
		for u := range newR[name] {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			nv := newR[name][u]
			ov, has := base[u]
			if !has {
				fmt.Printf("  %-18s %14s -> %-14s\n", u, "(none)", trim(nv))
				continue
			}
			delta := "  ~  "
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			fmt.Printf("  %-18s %14s -> %-14s %s\n", u, trim(ov), trim(nv), delta)
		}
	}
	return nil
}

// trim renders a metric value compactly (no trailing zeros).
func trim(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func main() {
	asText := flag.Bool("totext", false, "convert a go test -json stream to plain bench text on stdout")
	flag.Parse()
	var err error
	switch {
	case *asText && flag.NArg() == 1:
		err = toText(flag.Arg(0))
	case !*asText && flag.NArg() == 2:
		err = compare(flag.Arg(0), flag.Arg(1))
	default:
		fmt.Fprintln(os.Stderr, "usage: benchcompare OLD NEW  |  benchcompare -totext FILE")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
}
