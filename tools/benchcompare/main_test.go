package main

import (
	"os"
	"path/filepath"
	"testing"
)

const jsonStream = `{"Action":"run","Test":"BenchmarkReplayScale_10k"}
{"Action":"output","Output":"BenchmarkReplayScale_10k  \t"}
{"Action":"output","Output":"       1\t 174000000 ns/op\t        29.46 allocs/request\t     12368 series_bytes\n"}
{"Action":"output","Output":"not a benchmark line\n"}
{"Action":"output","Output":"BenchmarkReplayShard/serial-4 \t       1\t 14029107160 ns/op\t        18.31 allocs/request\n"}
`

const plainText = `goos: linux
BenchmarkReplayScale_10k 	       2	 120000000 ns/op	         8.66 allocs/request	     12368 series_bytes
BenchmarkReplayShard/serial 	       1	 13594000000 ns/op	        18.20 allocs/request
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// The parser must read both stored -json streams and plain bench text,
// strip the -N GOMAXPROCS suffix, and keep every value/unit pair.
func TestParseBothFormats(t *testing.T) {
	fromJSON, order, err := parseFile(writeTemp(t, "base.json", jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("parsed %d benchmarks from json stream, want 2 (%v)", len(order), order)
	}
	if got := fromJSON["BenchmarkReplayScale_10k"]["allocs/request"]; got != 29.46 {
		t.Fatalf("allocs/request = %v, want 29.46", got)
	}
	if _, ok := fromJSON["BenchmarkReplayShard/serial"]; !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", order)
	}

	fromText, _, err := parseFile(writeTemp(t, "head.txt", plainText))
	if err != nil {
		t.Fatal(err)
	}
	if got := fromText["BenchmarkReplayScale_10k"]["ns/op"]; got != 120000000 {
		t.Fatalf("ns/op = %v, want 120000000", got)
	}
}

// compare must accept a json baseline against a text head without error
// (the exact rendering is informational).
func TestCompareJSONAgainstText(t *testing.T) {
	base := writeTemp(t, "base.json", jsonStream)
	head := writeTemp(t, "head.txt", plainText)
	if err := compare(base, head); err != nil {
		t.Fatal(err)
	}
}
